/**
 * @file
 * The cycle-level RISC I machine: the paper's primary contribution.
 *
 * Execution model
 *  - Register-to-register instructions take one cycle; loads and stores
 *    take two (the extra memory cycle), matching the paper's timing.
 *  - Every control transfer has one architectural delay slot: the
 *    instruction after a jump/call/return always executes (RISC I has no
 *    annul bit).
 *  - CALL slides the register window down; when all windows are
 *    occupied the machine takes a window-overflow trap, spilling the
 *    oldest activation's 16 registers (HIGH + LOCAL) to the register
 *    save stack.  RETURN symmetrically refills on underflow.  Trap cost
 *    (handler overhead plus 16 memory accesses) is charged to the run.
 *
 * Program termination: a taken transfer whose target is the transfer's
 * own address halts the machine (the classic bare-metal self-jump; the
 * assembler's `halt` pseudo-instruction emits `jmpr alw, 0`).
 *
 * Ablation: with MachineConfig::windowedCalls = false the machine
 * models a conventional single-window register file.  Window mechanics
 * still run silently for correctness, but their traps are free and
 * uncounted; instead each CALL/RETURN is charged the software
 * save/restore convention (softFrameWords words each way, executed
 * against the save area so the memory counters see the traffic).
 */

#ifndef RISC1_CORE_MACHINE_HH
#define RISC1_CORE_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include <optional>

#include "common/program.hh"
#include "core/outcome.hh"
#include "core/regfile.hh"
#include "core/stats.hh"
#include "isa/instruction.hh"
#include "mem/hierarchy.hh"
#include "memory/cache.hh"
#include "memory/memory.hh"
#include "target/decode_cache.hh"

namespace risc1::obs {
class Trace;
} // namespace risc1::obs

namespace risc1 {

/** Per-event cycle costs (the paper's stated timing). */
struct Timing
{
    unsigned aluCycles = 1;
    unsigned loadCycles = 2;   ///< includes the extra memory cycle
    unsigned storeCycles = 2;
    unsigned jumpCycles = 1;
    unsigned callCycles = 1;
    unsigned retCycles = 1;
    unsigned specialCycles = 1;
    unsigned trapOverheadCycles = 6;   ///< per overflow/underflow trap
    unsigned trapPerWordCycles = 2;    ///< per spilled/filled word
    unsigned softPerWordCycles = 2;    ///< ablation save/restore word
};

/** Machine construction parameters. */
struct MachineConfig
{
    WindowConfig windows = WindowConfig::full();
    Timing timing;
    std::size_t memorySize = 16u << 20;
    /** Register-save stack top; spills grow downward from here. */
    std::uint32_t saveAreaTop = 0x00f00000;
    /** Ablation save-area top (distinct from the spill stack). */
    std::uint32_t softAreaTop = 0x00e00000;
    /** False = no-window ablation (see file comment). */
    bool windowedCalls = true;
    /** Words saved and restored per call in the ablation. */
    unsigned softFrameWords = 8;
    /**
     * Legacy flat instruction-cache config: shorthand for mem.l1i
     * (the RISC II-era extension).  When both are set, mem.l1i wins.
     * Disabled by default — RISC I had no cache.
     */
    std::optional<CacheConfig> icache;
    /**
     * Legacy flat data-cache config: shorthand for mem.l1d, consulted
     * on program loads/stores (window spill/fill traffic bypasses the
     * hierarchy, as trap microcode would).  Disabled by default.
     */
    std::optional<CacheConfig> dcache;
    /**
     * Memory-hierarchy configuration (mem/hierarchy.hh): split L1s
     * over an optional unified L2.  The legacy icache/dcache fields
     * above fold into the l1i/l1d slots at construction.
     */
    mem::HierarchyConfig caches;

    /** Effective hierarchy config after folding the legacy fields. */
    mem::HierarchyConfig effectiveHierarchy() const;
};

/** Packed PSW layout used by GETPSW/PUTPSW. */
struct Psw
{
    CondCodes cc;
    bool intEnable = true;
    std::uint8_t cwp = 0;   ///< read-only via GETPSW
    std::uint8_t swp = 0;   ///< read-only via GETPSW

    std::uint32_t pack() const;
    /** PUTPSW writes condition codes and interrupt enable only. */
    void unpackUserBits(std::uint32_t value);

    bool operator==(const Psw &) const = default;
};

/** Call/return event recorded for the window analyzer. */
enum class CallEvent : std::uint8_t { Call, Return };

/**
 * Full architectural + accounting state captured by Machine::snapshot().
 *
 * A snapshot can be restored into any machine whose window geometry,
 * memory size, and windowed/non-windowed mode match the machine it was
 * taken from; timing parameters and cache fittings may differ.  This is
 * the fork primitive the batch engine uses to run a warmed-up prologue
 * once and sweep the epilogue across configurations: caches whose
 * geometry matches the snapshot resume with their captured contents,
 * any other cache restarts cold.
 *
 * Memory is captured as dirty pages only (everything written since the
 * machine was constructed); memory starts zeroed, so the dirty set is
 * a complete content snapshot.
 */
struct MachineSnapshot
{
    // -- Compatibility fingerprint ---------------------------------------
    WindowConfig windows;
    std::size_t memorySize = 0;
    bool windowedCalls = true;

    // -- Processor state -------------------------------------------------
    std::vector<std::uint32_t> physRegs;
    unsigned cwp = 0;
    Psw psw;
    std::uint32_t pc = 0;
    std::uint32_t npc = 0;
    std::uint32_t lastPc = 0;
    bool halted = false;
    bool inDelaySlot = false;
    bool hasNpcOverride = false;
    std::uint32_t npcOverride = 0;
    unsigned resident = 1;
    unsigned saved = 0;
    std::uint32_t spillSp = 0;
    std::uint32_t softSp = 0;
    bool interruptPending = false;
    std::uint32_t interruptVector = 0;
    std::uint64_t interruptsTaken = 0;

    // -- Accounting ------------------------------------------------------
    RunStats stats;
    MemoryStats memStats;
    std::vector<CallEvent> callTrace;

    // -- Memory and caches -----------------------------------------------
    /** Shared-page view of the dirty contents (no bytes copied). */
    MemoryImage pages;
    mem::HierarchySnapshot caches;

    /**
     * Field-for-field equality over the complete captured state — the
     * oracle the fast-path lockstep and fuzz tests assert with.
     */
    bool operator==(const MachineSnapshot &) const = default;
};

class Machine;

/**
 * One predecoded instruction: the fast path's cache entry.  Everything
 * step() derives per iteration — decoded fields, opcode metadata, the
 * operand-counter contributions, delay-slot classification, and the
 * resolved execution handler — is computed once at decode time.
 */
struct DecodedInst
{
    Instruction inst;
    const OpcodeInfo *info = nullptr;
    /** Resolved handler; nullptr marks an empty cache slot. */
    void (*exec)(Machine &, const DecodedInst &) = nullptr;
    std::uint8_t regReads = 0;   ///< countOperandRegs read contribution
    std::uint8_t regWrites = 0;  ///< countOperandRegs write contribution
    bool nop = false;            ///< isNop(inst)
    bool hasDelaySlot = false;   ///< transfer with architectural slot
};

/** The RISC I processor simulator. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config = MachineConfig{});

    const MachineConfig &config() const { return config_; }
    Memory &memory() { return mem_; }
    const Memory &memory() const { return mem_; }

    /** Load a program image and reset the processor to its entry. */
    void loadProgram(const Program &program);

    /** Reset processor state (registers, PSW, stats); memory is kept. */
    void reset(std::uint32_t entry = 0);

    /** Execute one instruction. @return false once halted. */
    bool step();

    /**
     * Run until halt or @p maxSteps instructions.
     * @throws FatalError when the step limit is hit (runaway program).
     */
    RunOutcome run(std::uint64_t maxSteps = 200'000'000);

    /**
     * Execute up to @p maxSteps instructions through the predecoded
     * fast path and report how far it got (no runaway throw — callers
     * that need a budget, like the batch engine, check `halted`).
     *
     * Architecturally bit-for-bit equivalent to calling step() in a
     * loop: registers, PSW, memory, all RunStats/MemoryStats/cache
     * counters, interrupt acceptance, and delay-slot behavior are
     * identical, including across self-modifying code and snapshot
     * restore (the decode cache keys on Memory's per-line write
     * generations, so any content change invalidates it).  When a
     * tracer is installed (setTrace) the engine falls back to step()
     * so the trace observes every instruction; see docs/SIM.md and
     * docs/OBSERVABILITY.md.
     */
    RunOutcome runFast(std::uint64_t maxSteps = 200'000'000);

    bool halted() const { return halted_; }
    std::uint32_t pc() const { return pc_; }

    /** Visible register access (current window). */
    std::uint32_t reg(unsigned r) const { return regs_.read(r); }
    void setReg(unsigned r, std::uint32_t v) { regs_.write(r, v); }

    const RegFile &regFile() const { return regs_; }
    const Psw &psw() const { return psw_; }
    const RunStats &stats() const { return stats_; }

    /** Activation frames currently resident in the register file. */
    unsigned residentFrames() const { return resident_; }
    /** Frames spilled to the register-save stack. */
    unsigned savedFrames() const { return saved_; }

    /** Record call/return events for the window analyzer. */
    void setRecordCallTrace(bool on) { recordCalls_ = on; }
    const std::vector<CallEvent> &callTrace() const { return callTrace_; }

    /**
     * Install (or clear, with nullptr) an execution tracer.  While
     * installed, every executed instruction, window trap, and accepted
     * interrupt is recorded into @p trace (obs/trace.hh); runFast()
     * falls back to the reference interpreter so the trace observes
     * every instruction in decode order.  Non-owning — the Trace must
     * outlive the registration.  No cost when none is installed.
     */
    void setTrace(obs::Trace *trace) { trace_ = trace; }
    obs::Trace *trace() const { return trace_; }

    /**
     * Request an external interrupt to @p vector.  Taken at the next
     * sequential instruction boundary while interrupts are enabled
     * (RISC I defers acceptance in a taken transfer's shadow — the
     * simulator's stand-in for the chip's LSTPC pipeline restart).
     * Entry mirrors CALLINT: the window slides down, the interrupted
     * instruction's address lands in the new window's r31, and
     * interrupts are disabled; the handler resumes with
     * `reti r31, 0`.
     */
    void raiseInterrupt(std::uint32_t vector);

    /** Interrupts accepted so far. */
    std::uint64_t interruptsTaken() const { return interruptsTaken_; }

    /** Per-level memory-hierarchy statistics (empty when none fitted). */
    mem::HierarchyStats memHierarchyStats() const
    {
        return hier_ ? hier_->stats() : mem::HierarchyStats{};
    }

    /** L1I statistics (zeroes when no instruction cache is fitted). */
    CacheStats icacheStats() const
    {
        return memHierarchyStats().l1i.value_or(CacheStats{});
    }

    /** L1D statistics (zeroes when no data cache is fitted). */
    CacheStats dcacheStats() const
    {
        return memHierarchyStats().l1d.value_or(CacheStats{});
    }

    /**
     * Capture the complete machine state (registers, PSW, window
     * bookkeeping, pending interrupt, statistics, dirty memory pages,
     * cache contents).  The snapshot is self-contained and may outlive
     * this machine.
     */
    MachineSnapshot snapshot() const;

    /**
     * Replace this machine's state with @p snap, as if execution had
     * run to the capture point here.  @throws FatalError when the
     * snapshot's window geometry, memory size, or windowed-calls mode
     * does not match this machine's configuration.  Caches keep their
     * snapshot contents when the geometry matches and restart cold
     * otherwise (see MachineSnapshot).
     */
    void restore(const MachineSnapshot &snap);

  private:
    friend struct FastOps;   ///< fast-path opcode handlers (machine.cc)

    struct AluResult
    {
        std::uint32_t value;
        CondCodes cc;
    };

    /** Decode-cache payload: one word-aligned code address. */
    struct PredecodePayload
    {
        DecodedInst d;
        /** Raw instruction word @ref d was decoded from; an unchanged
         *  word keeps its decode on revalidation, so data stores that
         *  merely land near code cost one word compare, not a
         *  re-decode. */
        std::uint32_t word = 0;
    };

    /** One slot per word-aligned address (see target/decode_cache.hh
     *  for the shared generation-validation machinery). */
    using PredecodeCache = target::DecodeCache<PredecodePayload, 2>;

    AluResult executeAlu(const Instruction &inst, std::uint32_t a,
                         std::uint32_t b) const;
    std::uint32_t readS2(const Instruction &inst);
    void execute(const Instruction &inst);
    void doCall(std::uint32_t target, unsigned rd, bool isInterrupt);
    void doReturn(std::uint32_t target, bool isInterrupt);
    void spillOldestFrame();
    void fillCurrentFrame();
    void transferTo(std::uint32_t target, bool haltOnSelf = false);
    void countOperandRegs(const Instruction &inst);
    void maybeAcceptInterrupt();
    /** Build a cache entry from a fetched instruction word. */
    static DecodedInst predecodeWord(std::uint32_t word);

    MachineConfig config_;
    Memory mem_;
    RegFile regs_;
    Psw psw_;
    RunStats stats_;

    std::uint32_t pc_ = 0;
    std::uint32_t npc_ = 4;
    std::uint32_t lastPc_ = 0;
    bool halted_ = false;
    /** True when the next instruction sits in a delay slot. */
    bool inDelaySlot_ = false;
    /** Taken-transfer target for the instruction after the delay slot. */
    std::uint32_t npcOverride_ = 0;
    bool hasNpcOverride_ = false;

    unsigned resident_ = 1;     ///< frames in the register file
    unsigned saved_ = 0;        ///< frames on the save stack
    std::uint32_t spillSp_;     ///< register-save stack pointer
    std::uint32_t softSp_;      ///< ablation save-area pointer

    bool recordCalls_ = false;
    std::vector<CallEvent> callTrace_;
    obs::Trace *trace_ = nullptr;

    bool interruptPending_ = false;
    std::uint32_t interruptVector_ = 0;
    std::uint64_t interruptsTaken_ = 0;

    std::optional<mem::Hierarchy> hier_;

    /** Lazily populated decode cache, one image per memory page. */
    PredecodeCache predecode_;
};

} // namespace risc1

#endif // RISC1_CORE_MACHINE_HH
