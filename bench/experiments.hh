/**
 * @file
 * The riscbench experiment registry: every table/figure experiment is
 * one run function (defined in its own .cc alongside the experiment's
 * commentary) registered here by name.  The riscbench driver
 * (riscbench.cc) dispatches `riscbench <name>`, `--list`, and `--all`
 * over this table; each entry's stdout is the experiment's published
 * table, and the deterministic ones are covered byte-for-byte by
 * tests/test_golden_tables.cc (timing experiments such as
 * fig_fork_fanout gate themselves instead).
 */

#ifndef RISC1_BENCH_EXPERIMENTS_HH
#define RISC1_BENCH_EXPERIMENTS_HH

#include <cstddef>
#include <string_view>

namespace risc1::bench {

int runTableInstructionMix();
int runTableCodeSize();
int runTableCodeSizeGenerated();
int runTableExecutionTime();
int runTableCallCost();
int runFigWindowOverflow();
int runFigDelaySlots();
int runFigRegisterTraffic();
int runTableWindowConfigs();
int runTableBaselineFamily();
int runTableFetchTraffic();
int runFigIcacheSweep();
int runFigMemHierarchy();
int runFigForkFanout();

/** One registered experiment. @return 0 on success. */
struct Experiment
{
    std::string_view name;   ///< CLI name (historic binary name)
    std::string_view title;  ///< one-line description for --list
    int (*run)();
};

/** Registry in paper order — the order `--all` runs. */
inline constexpr Experiment kExperiments[] = {
    {"table_instruction_mix",
     "E1: dynamic instruction mix on RISC I", runTableInstructionMix},
    {"table_code_size",
     "E2: static program size, RISC I vs the CISC baseline",
     runTableCodeSize},
    {"table_code_size_generated",
     "E2g: static size over a seeded population of generated RL "
     "programs",
     runTableCodeSizeGenerated},
    {"table_execution_time",
     "E3: execution time, RISC I vs the CISC baseline",
     runTableExecutionTime},
    {"table_call_cost",
     "E4/E8: procedure-call cost, windows vs memory frames",
     runTableCallCost},
    {"fig_window_overflow",
     "E5: window overflow rate vs number of windows",
     runFigWindowOverflow},
    {"fig_delay_slots",
     "E6: delayed-branch slot utilisation", runFigDelaySlots},
    {"fig_register_traffic",
     "E7: operand locality, register vs memory references",
     runFigRegisterTraffic},
    {"table_window_configs",
     "A1: register-file ablation, 6 windows vs 8 vs none",
     runTableWindowConfigs},
    {"table_baseline_family",
     "E3b: RISC I speedup vs a family of CISC calibrations",
     runTableBaselineFamily},
    {"table_fetch_traffic",
     "E2b: instruction bytes fetched, RISC I vs the CISC baseline",
     runTableFetchTraffic},
    {"fig_icache_sweep",
     "X1: instruction-cache sensitivity sweep", runFigIcacheSweep},
    {"fig_mem_hierarchy",
     "X2: memory-hierarchy sweep on both backends",
     runFigMemHierarchy},
    {"fig_fork_fanout",
     "X3: snapshot fork fan-out, copy-on-write vs deep copy",
     runFigForkFanout},
};

inline constexpr std::size_t kNumExperiments =
    sizeof(kExperiments) / sizeof(kExperiments[0]);

} // namespace risc1::bench

#endif // RISC1_BENCH_EXPERIMENTS_HH
