/** Shared helpers for machine-level tests. */

#ifndef RISC1_TESTS_HELPERS_HH
#define RISC1_TESTS_HELPERS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "core/machine.hh"
#include "isa/instruction.hh"
#include "obs/trace.hh"

namespace risc1::test {

inline constexpr std::uint32_t kOrg = 0x1000;

/** Load raw instructions at kOrg, append a halt, and reset @p m. */
inline void
loadRaw(Machine &m, const std::vector<Instruction> &insts,
        bool appendHalt = true)
{
    std::uint32_t addr = kOrg;
    for (const auto &inst : insts) {
        m.memory().pokeWord(addr, inst.encode());
        addr += 4;
    }
    if (appendHalt)
        m.memory().pokeWord(addr, Instruction::jmpr(Cond::Alw, 0).encode());
    m.reset(kOrg);
}

/** Assemble @p source, load, and reset @p m. */
inline void
loadAsm(Machine &m, const std::string &source)
{
    const Program prog = assembleRisc(source);
    m.loadProgram(prog);
}

/** Assemble + run to completion on a fresh default machine. */
inline Machine
runAsm(const std::string &source, std::uint64_t maxSteps = 10'000'000)
{
    Machine m;
    loadAsm(m, source);
    m.run(maxSteps);
    return m;
}

/**
 * A per-step probe for tests: a minimal Trace whose single sink
 * forwards instruction events to a callback.  Install with
 * `m.setTrace(probe.get())`; the callback fires before each
 * instruction executes, so machine state read inside it is the
 * pre-execution state (trap/interrupt events are filtered out).
 */
class ProbeTrace
{
  public:
    using Callback = std::function<void(const obs::TraceEvent &)>;

    explicit ProbeTrace(Callback fn) : sink_(std::move(fn))
    {
        trace_.addSink(sink_);
    }

    obs::Trace *get() { return &trace_; }

  private:
    class CallbackSink final : public obs::TraceSink
    {
      public:
        explicit CallbackSink(Callback fn) : fn_(std::move(fn)) {}

        void
        event(const obs::TraceEvent &ev) override
        {
            if (ev.kind == obs::EventKind::Instruction)
                fn_(ev);
        }

      private:
        Callback fn_;
    };

    obs::Trace trace_{1};
    CallbackSink sink_;
};

} // namespace risc1::test

#endif // RISC1_TESTS_HELPERS_HH
