// Recursive Fibonacci: deep call tree, exercises RISC I window
// overflow/underflow against VAX CALLS frames.
int calls = 0;

int fib(int n) {
  calls = (calls + 1);
  if ((n < 2)) {
    return n;
  }
  return (fib((n - 1)) + fib((n - 2)));
}

int main() {
  out(fib(12));
  out(calls);
  return fib(10);
}
