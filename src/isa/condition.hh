/**
 * @file
 * RISC I condition codes and jump conditions.
 *
 * Conditional jumps name one of 16 conditions evaluated against the four
 * PSW condition-code bits N/Z/V/C.  ALU instructions set the bits only
 * when their scc bit is set; compare idioms therefore use
 * `subs r0, ra, rb` (subtract, set codes, discard result).
 */

#ifndef RISC1_ISA_CONDITION_HH
#define RISC1_ISA_CONDITION_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace risc1 {

/** Condition-code bits as produced by scc ALU operations. */
struct CondCodes
{
    bool n = false;  ///< negative (sign bit of result)
    bool z = false;  ///< zero
    bool v = false;  ///< signed overflow
    bool c = false;  ///< carry out (ADD) / borrow (SUB)

    bool operator==(const CondCodes &) const = default;
};

/** The 16 jump conditions (value = encoding in the rd field). */
enum class Cond : std::uint8_t
{
    Never = 0x0,  ///< never taken
    Alw   = 0x1,  ///< always taken
    Eq    = 0x2,  ///< Z
    Ne    = 0x3,  ///< !Z
    Lt    = 0x4,  ///< N != V        (signed <)
    Ge    = 0x5,  ///< N == V        (signed >=)
    Le    = 0x6,  ///< Z || N != V   (signed <=)
    Gt    = 0x7,  ///< !Z && N == V  (signed >)
    Ltu   = 0x8,  ///< C             (unsigned <, borrow set)
    Geu   = 0x9,  ///< !C            (unsigned >=)
    Leu   = 0xa,  ///< C || Z        (unsigned <=)
    Gtu   = 0xb,  ///< !C && !Z      (unsigned >)
    Mi    = 0xc,  ///< N
    Pl    = 0xd,  ///< !N
    Vs    = 0xe,  ///< V
    Vc    = 0xf,  ///< !V
};

/** Evaluate @p cond against @p cc. */
bool condHolds(Cond cond, const CondCodes &cc);

/** Mnemonic for a condition ("alw", "eq", ...). */
std::string_view condName(Cond cond);

/** Parse a condition mnemonic. */
std::optional<Cond> condFromName(std::string_view name);

} // namespace risc1

#endif // RISC1_ISA_CONDITION_HH
