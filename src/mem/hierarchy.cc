#include "mem/hierarchy.hh"

#include "common/json.hh"

namespace risc1 {
namespace mem {

namespace {

/** Apply the warm-or-cold rule to one level slot. */
void
restoreLevel(std::optional<Level> &level,
             const std::optional<LevelSnapshot> &snap)
{
    if (!level)
        return;
    if (snap && level->compatible(snap->config))
        level->restore(*snap);
    else
        level->reset();
}

void
writeLevelEntry(JsonWriter &w, const char *name,
                const std::optional<LevelStats> &stats)
{
    if (!stats)
        return;
    w.beginObject().key("level").value(name);
    w.key("hits").value(stats->hits);
    w.key("misses").value(stats->misses);
    w.key("writebacks").value(stats->writebacks);
    w.key("penaltyCycles").value(stats->penaltyCycles);
    w.endObject();
}

} // namespace

std::uint64_t
HierarchyStats::penaltyCycles() const
{
    std::uint64_t total = 0;
    if (l1i)
        total += l1i->penaltyCycles;
    if (l1d)
        total += l1d->penaltyCycles;
    if (l2)
        total += l2->penaltyCycles;
    return total;
}

void
HierarchyStats::writeJson(JsonWriter &w) const
{
    w.beginObject().key("levels").beginArray();
    writeLevelEntry(w, "l1i", l1i);
    writeLevelEntry(w, "l1d", l1d);
    writeLevelEntry(w, "l2", l2);
    w.endArray().endObject();
}

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config)
{
    if (config_.l1i)
        l1i_.emplace(*config_.l1i);
    if (config_.l1d)
        l1d_.emplace(*config_.l1d);
    if (config_.l2)
        l2_.emplace(*config_.l2);
}

unsigned
Hierarchy::fetch(std::uint32_t addr)
{
    unsigned cycles = 0;
    if (l1i_) {
        const Level::Access a = l1i_->access(addr, false);
        cycles += a.cycles;
        if (a.hit)
            return cycles;
    }
    if (l2_)
        cycles += l2_->access(addr, false).cycles;
    return cycles;
}

unsigned
Hierarchy::data(std::uint32_t addr, bool isWrite)
{
    unsigned cycles = 0;
    if (l1d_) {
        const Level::Access a = l1d_->access(addr, isWrite);
        cycles += a.cycles;
        if (a.hit)
            return cycles;
    }
    if (l2_)
        cycles += l2_->access(addr, isWrite).cycles;
    return cycles;
}

HierarchyStats
Hierarchy::stats() const
{
    HierarchyStats s;
    if (l1i_)
        s.l1i = l1i_->stats();
    if (l1d_)
        s.l1d = l1d_->stats();
    if (l2_)
        s.l2 = l2_->stats();
    return s;
}

void
Hierarchy::reset()
{
    if (l1i_)
        l1i_->reset();
    if (l1d_)
        l1d_->reset();
    if (l2_)
        l2_->reset();
}

HierarchySnapshot
Hierarchy::snapshot() const
{
    HierarchySnapshot s;
    if (l1i_)
        s.l1i = l1i_->snapshot();
    if (l1d_)
        s.l1d = l1d_->snapshot();
    if (l2_)
        s.l2 = l2_->snapshot();
    return s;
}

void
Hierarchy::restore(const HierarchySnapshot &snap)
{
    restoreLevel(l1i_, snap.l1i);
    restoreLevel(l1d_, snap.l1d);
    restoreLevel(l2_, snap.l2);
}

} // namespace mem
} // namespace risc1
