/**
 * Unit tests for the RL front end and reference interpreter: lexing,
 * parsing, semantic checks, printer round-tripping, and the fixed
 * language semantics every backend must reproduce (docs/LANG.md).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "lang/interp.hh"
#include "lang/parser.hh"
#include "lang/print.hh"

namespace risc1::lang {
namespace {

Observation
runRL(const std::string &source)
{
    const InterpResult r = interpret(parseProgram(source));
    EXPECT_TRUE(r.ok) << r.error;
    return r.obs;
}

TEST(LangParser, PrintedFormReparsesToItself)
{
    const char *source = R"(
        int s0 = 7;
        int a[8];
        int helper(int x, int y) {
          return ((x + y) ^ s0);
        }
        int main() {
          int v0 = helper(1, 2);
          while ((v0 > 0)) {
            a[v0] = v0;
            v0 = (v0 - 1);
          }
          if ((a[1] == 1)) {
            out(v0);
          } else {
            out(s0);
          }
          return a[2];
        }
    )";
    const std::string once = printProgram(parseProgram(source));
    const std::string twice = printProgram(parseProgram(once));
    EXPECT_EQ(once, twice);
    EXPECT_NE(once.find("int helper(int x, int y)"), std::string::npos);
}

TEST(LangParser, CommentsAndWhitespaceIgnored)
{
    const Observation obs = runRL("// leading comment\n"
                                  "int main() { // trailing\n"
                                  "  return 42; // value\n"
                                  "}\n");
    EXPECT_EQ(obs.ret, 42u);
}

TEST(LangParser, RejectsIllFormedPrograms)
{
    // No main.
    EXPECT_THROW(parseProgram("int f() { return 0; }"), FatalError);
    // main with parameters.
    EXPECT_THROW(parseProgram("int main(int x) { return x; }"),
                 FatalError);
    // Duplicate global.
    EXPECT_THROW(
        parseProgram("int g = 0; int g = 1;"
                     "int main() { return 0; }"),
        FatalError);
    // Non-power-of-two array size.
    EXPECT_THROW(
        parseProgram("int a[3]; int main() { return 0; }"),
        FatalError);
    // Shift count must be a literal.
    EXPECT_THROW(
        parseProgram("int main() { int v = 1;"
                     " return (2 << v); }"),
        FatalError);
    // Unknown callee.
    EXPECT_THROW(parseProgram("int main() { return nope(); }"),
                 FatalError);
    // Arity mismatch.
    EXPECT_THROW(
        parseProgram("int f(int x) { return x; }"
                     "int main() { return f(); }"),
        FatalError);
}

TEST(LangParser, ProgramValidMirrorsCheckProgram)
{
    Program ok = parseProgram("int main() { return 1; }");
    EXPECT_TRUE(programValid(ok));
    // Break it in memory the way the minimizer might: drop main.
    ok.functions.clear();
    EXPECT_FALSE(programValid(ok));
}

TEST(LangInterp, WrappingArithmeticAndLogicalShift)
{
    const Observation obs = runRL(R"(
        int main() {
          out((2147483647 + 1));
          out((0 - 2147483648));
          out((-1 >> 1));
          out((1 << 31));
          out((-8 >> 2));
          return 0;
        }
    )");
    ASSERT_EQ(obs.out.size(), 5u);
    EXPECT_EQ(obs.out[0], 0x80000000u);  // INT_MAX + 1 wraps
    EXPECT_EQ(obs.out[1], 0x80000000u);  // -INT_MIN wraps to itself
    EXPECT_EQ(obs.out[2], 0x7fffffffu);  // >> is logical, not arithmetic
    EXPECT_EQ(obs.out[3], 0x80000000u);
    EXPECT_EQ(obs.out[4], 0x3ffffffeu);
}

TEST(LangInterp, SignedComparisonsYieldZeroOne)
{
    const Observation obs = runRL(R"(
        int main() {
          out((-1 < 0));
          out((-1 < 1));
          out((2147483647 > -2147483648));
          out((5 == 5));
          out((5 != 5));
          out((-3 >= -3));
          return 0;
        }
    )");
    ASSERT_EQ(obs.out.size(), 6u);
    EXPECT_EQ(obs.out[0], 1u);
    EXPECT_EQ(obs.out[1], 1u);
    EXPECT_EQ(obs.out[2], 1u);
    EXPECT_EQ(obs.out[3], 1u);
    EXPECT_EQ(obs.out[4], 0u);
    EXPECT_EQ(obs.out[5], 1u);
}

TEST(LangInterp, ShortCircuitSkipsRightHandSide)
{
    const Observation obs = runRL(R"(
        int hits = 0;
        int tick(int v) {
          hits = (hits + 1);
          return v;
        }
        int main() {
          int r = 0;
          r = (0 && tick(1));
          r = (r + (1 || tick(1)));
          r = (r + (1 && tick(9)));
          return hits;
        }
    )");
    EXPECT_EQ(obs.ret, 1u);  // only the last tick() ran
    ASSERT_EQ(obs.globals.size(), 1u);
    EXPECT_EQ(obs.globals[0], 1u);
}

TEST(LangInterp, ArrayIndicesMaskWithSizeMinusOne)
{
    const Observation obs = runRL(R"(
        int a[4];
        int main() {
          a[0] = 10;
          a[5] = 20;    // 5 & 3 == 1
          a[-1] = 30;   // -1 & 3 == 3
          out(a[1]);
          out(a[3]);
          out(a[4]);    // 4 & 3 == 0
          return 0;
        }
    )");
    ASSERT_EQ(obs.out.size(), 3u);
    EXPECT_EQ(obs.out[0], 20u);
    EXPECT_EQ(obs.out[1], 30u);
    EXPECT_EQ(obs.out[2], 10u);
}

TEST(LangInterp, OutTraceCapsAtBufferButKeepsCounting)
{
    const Observation obs = runRL(R"(
        int main() {
          int i = 0;
          while ((i < 100)) {
            out(i);
            i = (i + 1);
          }
          return i;
        }
    )");
    EXPECT_EQ(obs.outTotal, 100u);
    ASSERT_EQ(obs.out.size(), static_cast<std::size_t>(kOutCap));
    EXPECT_EQ(obs.out.front(), 0u);
    EXPECT_EQ(obs.out.back(), static_cast<std::uint32_t>(kOutCap - 1));
}

TEST(LangInterp, StepFuseStopsRunawayLoops)
{
    InterpLimits limits;
    limits.maxSteps = 1000;
    const InterpResult r = interpret(
        parseProgram("int main() { while (1) { } return 0; }"),
        limits);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("step"), std::string::npos);
}

TEST(LangInterp, CallDepthFuseStopsRunawayRecursion)
{
    const InterpResult r = interpret(parseProgram(
        "int f(int n) { return f(n); }"
        "int main() { return f(1); }"));
    EXPECT_FALSE(r.ok);
}

TEST(LangInterp, DigestCoversEveryObservable)
{
    const Observation a = runRL("int g = 1; int main() { return 5; }");
    const Observation b = runRL("int g = 2; int main() { return 5; }");
    const Observation c = runRL("int g = 1; int main() { return 6; }");
    EXPECT_NE(a.digest(), b.digest());
    EXPECT_NE(a.digest(), c.digest());
    EXPECT_EQ(a.digest(),
              runRL("int g = 1; int main() { return 5; }").digest());
}

} // namespace
} // namespace risc1::lang
