/**
 * @file
 * The RL reference interpreter — the oracle every backend is measured
 * against, plus the language-level observables that define
 * whole-program agreement for the differential harness (diff.hh):
 *
 *  - the return value of `main` (the per-ISA checksum register),
 *  - the final global-memory image, word for word,
 *  - the `out()` trace (total count plus the first kOutCap values).
 *
 * Semantics are fixed here once: 32-bit wrapping arithmetic, signed
 * comparisons yielding 0/1, logical shifts with literal counts,
 * short-circuit && and ||, array indices masked with size-1, all
 * locals zero at function entry.  Both lowerings implement exactly
 * these rules; any disagreement is a compiler or simulator bug.
 */

#ifndef RISC1_LANG_INTERP_HH
#define RISC1_LANG_INTERP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.hh"

namespace risc1::lang {

/** The language-level observables of one program execution. */
struct Observation
{
    std::uint32_t ret = 0;             ///< return value of main
    std::vector<std::uint32_t> globals;  ///< final image, layout order
    std::uint64_t outTotal = 0;        ///< number of out() executions
    std::vector<std::uint32_t> out;    ///< first kOutCap out() values

    /** FNV-1a over every observable word — the corpus golden value. */
    std::uint32_t digest() const;

    bool operator==(const Observation &o) const = default;

    /** One-line rendering for diagnostics and goldens. */
    std::string summary() const;
};

/** Interpreter limits: `steps` counts statements + expression nodes. */
struct InterpLimits
{
    std::uint64_t maxSteps = 2'000'000;
    unsigned maxCallDepth = 200;
};

/** One reference execution. */
struct InterpResult
{
    bool ok = false;          ///< completed within the fuses
    std::string error;        ///< fuse description when !ok
    std::uint64_t steps = 0;  ///< statements + expression nodes
    std::uint64_t calls = 0;  ///< function calls executed
    Observation obs;
};

/** Run @p program (from `main`) under the reference semantics. */
InterpResult interpret(const Program &program,
                       const InterpLimits &limits = {});

} // namespace risc1::lang

#endif // RISC1_LANG_INTERP_HH
