/**
 * @file
 * Disassembler for the CISC baseline's variable-length encoding.
 * Renders instructions in the syntax its assembler accepts.
 */

#ifndef RISC1_VAX_VDISASM_HH
#define RISC1_VAX_VDISASM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace risc1 {

/** One disassembled instruction. */
struct VaxDisasmLine
{
    std::uint32_t address = 0;
    unsigned length = 0;      ///< bytes consumed
    std::string text;         ///< rendered assembly
};

/**
 * Disassemble one instruction at @p offset within @p bytes, where the
 * block loads at @p base.  Branch targets render as absolute hex.
 * @throws FatalError on an illegal opcode or truncated instruction.
 */
VaxDisasmLine vaxDisassembleAt(const std::vector<std::uint8_t> &bytes,
                               std::size_t offset, std::uint32_t base);

/** Disassemble a whole code block; stops at the first illegal byte. */
std::vector<VaxDisasmLine>
vaxDisassembleBlock(const std::vector<std::uint8_t> &bytes,
                    std::uint32_t base);

} // namespace risc1

#endif // RISC1_VAX_VDISASM_HH
