#include "vax/vmachine.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace risc1 {

void
VaxStats::writeJson(JsonWriter &w) const
{
    static constexpr std::string_view classNames[] = {
        "move", "alu", "branch", "loop", "callret", "misc"};
    w.beginObject()
        .field("cycles", cycles)
        .field("instructions", instructions);
    w.key("perClass").beginObject();
    for (std::size_t i = 0; i < perClass.size(); ++i)
        w.field(classNames[i], perClass[i]);
    w.endObject();
    w.field("branchesTaken", branchesTaken)
        .field("branchesUntaken", branchesUntaken)
        .field("calls", calls)
        .field("returns", returns)
        .field("callDepth", callDepth)
        .field("maxCallDepth", maxCallDepth)
        .field("memOperandReads", memOperandReads)
        .field("memOperandWrites", memOperandWrites)
        .field("regOperandReads", regOperandReads)
        .field("regOperandWrites", regOperandWrites)
        .field("instrBytes", instrBytes)
        .endObject();
}

VaxMachine::VaxMachine(const VaxConfig &config)
    : config_(config), mem_(config.memorySize)
{
    if (config_.stackTop % 4 != 0 || config_.stackTop > config_.memorySize)
        fatal("stackTop must be word-aligned and inside memory");
    if (config_.caches.any())
        hier_.emplace(config_.caches);
}

void
VaxMachine::loadProgram(const Program &program)
{
    for (const auto &seg : program.segments)
        mem_.load(seg.base, seg.bytes.data(), seg.bytes.size());
    reset(program.entry);
}

void
VaxMachine::reset(std::uint32_t entry)
{
    regs_.fill(0);
    regs_[vaxPc] = entry;
    regs_[vaxSp] = config_.stackTop;
    regs_[vaxFp] = config_.stackTop;
    regs_[vaxAp] = config_.stackTop;
    cc_ = CondCodes{};
    stats_.reset();
    mem_.resetStats();
    halted_ = false;
    if (hier_)
        hier_->reset();
}

std::uint32_t
VaxMachine::reg(unsigned r) const
{
    if (r >= vaxNumRegs)
        panic(cat("register out of range: ", r));
    return regs_[r];
}

void
VaxMachine::setReg(unsigned r, std::uint32_t value)
{
    if (r >= vaxNumRegs)
        panic(cat("register out of range: ", r));
    regs_[r] = value;
}

std::uint8_t
VaxMachine::fetchByte()
{
    const std::uint8_t b = mem_.fetchByte(regs_[vaxPc]);
    regs_[vaxPc] += 1;
    ++stats_.instrBytes;
    return b;
}

std::uint16_t
VaxMachine::fetchHalf()
{
    const std::uint16_t lo = fetchByte();
    const std::uint16_t hi = fetchByte();
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t
VaxMachine::fetchLong()
{
    const std::uint32_t lo = fetchHalf();
    const std::uint32_t hi = fetchHalf();
    return lo | (hi << 16);
}

VaxMachine::Ref
VaxMachine::decodeSpecifier(Width width)
{
    const unsigned step =
        width == Width::Byte ? 1 : width == Width::Half ? 2 : 4;
    const std::uint8_t spec = fetchByte();
    const auto modeNibble = static_cast<std::uint8_t>(spec >> 4);
    const unsigned rn = spec & 0x0f;
    Ref ref;

    if (modeNibble <= 3) {
        // Short literal 0..63.
        ref.kind = Ref::Kind::Literal;
        ref.value = spec & 0x3f;
        return ref;
    }

    const auto mode = static_cast<VaxMode>(modeNibble);
    stats_.cycles += vaxSpecCycles(mode);

    switch (mode) {
      case VaxMode::Register:
        ref.kind = Ref::Kind::Reg;
        ref.reg = rn;
        return ref;
      case VaxMode::Deferred:
        ref.kind = Ref::Kind::Mem;
        ref.reg = rn;
        ref.addr = regs_[rn];
        ++stats_.regOperandReads;
        return ref;
      case VaxMode::AutoDec:
        regs_[rn] -= step;
        ref.kind = Ref::Kind::Mem;
        ref.addr = regs_[rn];
        ++stats_.regOperandReads;
        ++stats_.regOperandWrites;
        return ref;
      case VaxMode::AutoInc:
        if (rn == vaxPc) {
            // Immediate: a 4-byte literal in the instruction stream.
            ref.kind = Ref::Kind::Literal;
            ref.value = fetchLong();
            return ref;
        }
        ref.kind = Ref::Kind::Mem;
        ref.addr = regs_[rn];
        regs_[rn] += step;
        ++stats_.regOperandReads;
        ++stats_.regOperandWrites;
        return ref;
      case VaxMode::AutoIncDef:
        if (rn == vaxPc) {
            // Absolute: 4-byte address in the instruction stream.
            ref.kind = Ref::Kind::Mem;
            ref.addr = fetchLong();
            return ref;
        }
        fatal("autoincrement-deferred supported only as absolute (@)");
      case VaxMode::DispByte: {
        const auto disp = sext(fetchByte(), 8);
        ref.kind = Ref::Kind::Mem;
        ref.addr = regs_[rn] + static_cast<std::uint32_t>(disp);
        ++stats_.regOperandReads;
        return ref;
      }
      case VaxMode::DispWord: {
        const auto disp = sext(fetchHalf(), 16);
        ref.kind = Ref::Kind::Mem;
        ref.addr = regs_[rn] + static_cast<std::uint32_t>(disp);
        ++stats_.regOperandReads;
        return ref;
      }
      case VaxMode::DispLong: {
        const std::uint32_t disp = fetchLong();
        ref.kind = Ref::Kind::Mem;
        ref.addr = regs_[rn] + disp;
        ++stats_.regOperandReads;
        return ref;
      }
      default:
        fatal(cat("illegal addressing mode nibble 0x", std::hex,
                  static_cast<int>(modeNibble)));
    }
}

VaxMachine::Ref
VaxMachine::decodeOperand(VaxOpndUse use)
{
    if (use == VaxOpndUse::Branch8) {
        Ref ref;
        ref.kind = Ref::Kind::Branch;
        const auto disp = sext(fetchByte(), 8);
        ref.value = regs_[vaxPc] + static_cast<std::uint32_t>(disp);
        return ref;
    }
    if (use == VaxOpndUse::Branch16) {
        Ref ref;
        ref.kind = Ref::Kind::Branch;
        const auto disp = sext(fetchHalf(), 16);
        ref.value = regs_[vaxPc] + static_cast<std::uint32_t>(disp);
        return ref;
    }
    Width width = Width::Long;
    if (use == VaxOpndUse::ReadByte || use == VaxOpndUse::WriteByte)
        width = Width::Byte;
    else if (use == VaxOpndUse::ReadHalf || use == VaxOpndUse::WriteHalf)
        width = Width::Half;
    return decodeSpecifier(width);
}

std::uint32_t
VaxMachine::readRef(const Ref &ref, Width width)
{
    switch (ref.kind) {
      case Ref::Kind::Literal:
      case Ref::Kind::Branch:
        return ref.value;
      case Ref::Kind::Reg:
        ++stats_.regOperandReads;
        return regs_[ref.reg];
      case Ref::Kind::Mem:
        ++stats_.memOperandReads;
        stats_.cycles += config_.memAccessCycles;
        if (hier_)
            stats_.cycles += hier_->data(ref.addr, false);
        switch (width) {
          case Width::Byte: return mem_.readByte(ref.addr);
          case Width::Half: return mem_.readHalf(ref.addr);
          case Width::Long: return mem_.readWord(ref.addr);
        }
    }
    panic("unreachable");
}

void
VaxMachine::writeRef(const Ref &ref, std::uint32_t value, Width width)
{
    switch (ref.kind) {
      case Ref::Kind::Literal:
      case Ref::Kind::Branch:
        fatal("write to a literal operand");
      case Ref::Kind::Reg:
        ++stats_.regOperandWrites;
        if (ref.reg == vaxPc)
            fatal("write to PC via operand (use JMP)");
        regs_[ref.reg] = value;
        return;
      case Ref::Kind::Mem:
        ++stats_.memOperandWrites;
        stats_.cycles += config_.memAccessCycles;
        if (hier_)
            stats_.cycles += hier_->data(ref.addr, true);
        switch (width) {
          case Width::Byte:
            mem_.writeByte(ref.addr, static_cast<std::uint8_t>(value));
            return;
          case Width::Half:
            mem_.writeHalf(ref.addr, static_cast<std::uint16_t>(value));
            return;
          case Width::Long:
            mem_.writeWord(ref.addr, value);
            return;
        }
    }
    panic("unreachable");
}

void
VaxMachine::setNZ(std::uint32_t value)
{
    cc_.n = (value >> 31) != 0;
    cc_.z = value == 0;
    cc_.v = false;
    cc_.c = false;
}

void
VaxMachine::push(std::uint32_t value)
{
    regs_[vaxSp] -= 4;
    mem_.writeWord(regs_[vaxSp], value);
    ++stats_.memOperandWrites;
    stats_.cycles += config_.memAccessCycles;
    if (hier_)
        stats_.cycles += hier_->data(regs_[vaxSp], true);
}

std::uint32_t
VaxMachine::pop()
{
    const std::uint32_t addr = regs_[vaxSp];
    const std::uint32_t value = mem_.readWord(addr);
    regs_[vaxSp] += 4;
    ++stats_.memOperandReads;
    stats_.cycles += config_.memAccessCycles;
    if (hier_)
        stats_.cycles += hier_->data(addr, false);
    return value;
}

void
VaxMachine::doCalls(std::uint32_t numArgs, std::uint32_t dst)
{
    ++stats_.calls;
    ++stats_.callDepth;
    stats_.maxCallDepth =
        std::max(stats_.maxCallDepth, stats_.callDepth);

    // Argument count sits just above the frame; AP will point at it.
    push(numArgs);
    const std::uint32_t argBase = regs_[vaxSp];

    // Entry mask: 16 bits at the procedure's first two bytes.  Code
    // is variable-length, so the mask may sit at any alignment; read
    // it byte-wise as the microcode would.
    const auto mask = static_cast<std::uint16_t>(
        mem_.readByte(dst) | (mem_.readByte(dst + 1) << 8));
    ++stats_.memOperandReads;
    stats_.cycles += config_.memAccessCycles;
    if (hier_)
        stats_.cycles += hier_->data(dst, false);

    // Save registers R11..R0 per mask (R0 ends nearest the top).
    unsigned saved = 0;
    for (int r = 11; r >= 0; --r) {
        if (mask & (1u << r)) {
            push(regs_[static_cast<unsigned>(r)]);
            ++saved;
        }
    }
    stats_.cycles += saved * config_.perRegSaveCycles;

    push(regs_[vaxPc]);   // return address
    push(regs_[vaxFp]);
    push(regs_[vaxAp]);
    push(static_cast<std::uint32_t>(mask) << 16);  // PSW+mask word

    regs_[vaxFp] = regs_[vaxSp];
    regs_[vaxAp] = argBase;
    regs_[vaxPc] = dst + 2;  // skip the entry mask
}

void
VaxMachine::doRet()
{
    if (stats_.callDepth == 0)
        fatal("RET executed with no active CALLS frame");
    ++stats_.returns;
    --stats_.callDepth;

    regs_[vaxSp] = regs_[vaxFp];
    const std::uint32_t maskWord = pop();
    const std::uint16_t mask = static_cast<std::uint16_t>(maskWord >> 16);
    regs_[vaxAp] = pop();
    regs_[vaxFp] = pop();
    const std::uint32_t retPc = pop();

    unsigned restored = 0;
    for (unsigned r = 0; r <= 11; ++r) {
        if (mask & (1u << r)) {
            regs_[r] = pop();
            ++restored;
        }
    }
    stats_.cycles += restored * config_.perRegSaveCycles;

    const std::uint32_t numArgs = pop();
    regs_[vaxSp] += numArgs * 4;  // discard arguments
    regs_[vaxPc] = retPc;
}

void
VaxMachine::execute(const VaxOpInfo &info, Ref *ops)
{
    auto branchIf = [&](bool taken, const Ref &target) {
        if (taken) {
            regs_[vaxPc] = target.value;
            ++stats_.branchesTaken;
            ++stats_.cycles;  // taken-branch penalty
        } else {
            ++stats_.branchesUntaken;
        }
    };
    auto setAddFlags = [&](std::uint32_t a, std::uint32_t b,
                           std::uint32_t r) {
        cc_.n = (r >> 31) != 0;
        cc_.z = r == 0;
        cc_.c = (static_cast<std::uint64_t>(a) + b) >> 32 != 0;
        cc_.v = ((~(a ^ b) & (a ^ r)) >> 31) != 0;
    };
    auto setSubFlags = [&](std::uint32_t a, std::uint32_t b,
                           std::uint32_t r) {
        cc_.n = (r >> 31) != 0;
        cc_.z = r == 0;
        cc_.c = a < b;
        cc_.v = (((a ^ b) & (a ^ r)) >> 31) != 0;
    };

    switch (info.op) {
      case VaxOpcode::Halt:
        halted_ = true;
        break;
      case VaxOpcode::Nop:
        break;

      case VaxOpcode::Movl: {
        const std::uint32_t v = readRef(ops[0], Width::Long);
        writeRef(ops[1], v, Width::Long);
        setNZ(v);
        break;
      }
      case VaxOpcode::Movb: {
        const std::uint32_t v = readRef(ops[0], Width::Byte) & 0xff;
        writeRef(ops[1], v, Width::Byte);
        setNZ(static_cast<std::uint32_t>(sext(v, 8)));
        break;
      }
      case VaxOpcode::Movw: {
        const std::uint32_t v = readRef(ops[0], Width::Half) & 0xffff;
        writeRef(ops[1], v, Width::Half);
        setNZ(static_cast<std::uint32_t>(sext(v, 16)));
        break;
      }
      case VaxOpcode::Moval: {
        if (ops[0].kind != Ref::Kind::Mem)
            fatal("moval needs an addressable source operand");
        writeRef(ops[1], ops[0].addr, Width::Long);
        setNZ(ops[0].addr);
        break;
      }
      case VaxOpcode::Movzbl: {
        const std::uint32_t v = readRef(ops[0], Width::Byte) & 0xff;
        writeRef(ops[1], v, Width::Long);
        setNZ(v);
        break;
      }
      case VaxOpcode::Movzwl: {
        const std::uint32_t v = readRef(ops[0], Width::Half) & 0xffff;
        writeRef(ops[1], v, Width::Long);
        setNZ(v);
        break;
      }
      case VaxOpcode::Clrl:
        writeRef(ops[0], 0, Width::Long);
        setNZ(0);
        break;
      case VaxOpcode::Pushl:
        push(readRef(ops[0], Width::Long));
        break;
      case VaxOpcode::Mnegl: {
        const std::uint32_t v = readRef(ops[0], Width::Long);
        const std::uint32_t r = 0u - v;
        writeRef(ops[1], r, Width::Long);
        setSubFlags(0, v, r);
        break;
      }
      case VaxOpcode::Mcoml: {
        const std::uint32_t r = ~readRef(ops[0], Width::Long);
        writeRef(ops[1], r, Width::Long);
        setNZ(r);
        break;
      }

      case VaxOpcode::Addl2:
      case VaxOpcode::Addl3: {
        const std::uint32_t a = readRef(ops[0], Width::Long);
        const std::uint32_t b = readRef(ops[1], Width::Long);
        const std::uint32_t r = a + b;
        writeRef(info.op == VaxOpcode::Addl2 ? ops[1] : ops[2], r,
                 Width::Long);
        setAddFlags(a, b, r);
        break;
      }
      case VaxOpcode::Subl2:
      case VaxOpcode::Subl3: {
        // VAX order: SUBL src, dst => dst -= src.
        const std::uint32_t src = readRef(ops[0], Width::Long);
        const std::uint32_t dst = readRef(ops[1], Width::Long);
        const std::uint32_t r = dst - src;
        writeRef(info.op == VaxOpcode::Subl2 ? ops[1] : ops[2], r,
                 Width::Long);
        setSubFlags(dst, src, r);
        break;
      }
      case VaxOpcode::Mull2:
      case VaxOpcode::Mull3: {
        const std::uint32_t a = readRef(ops[0], Width::Long);
        const std::uint32_t b = readRef(ops[1], Width::Long);
        const std::uint32_t r = a * b;
        writeRef(info.op == VaxOpcode::Mull2 ? ops[1] : ops[2], r,
                 Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Divl2:
      case VaxOpcode::Divl3: {
        const auto divisor =
            static_cast<std::int32_t>(readRef(ops[0], Width::Long));
        const auto dividend =
            static_cast<std::int32_t>(readRef(ops[1], Width::Long));
        if (divisor == 0)
            fatal("integer divide by zero");
        const auto r = static_cast<std::uint32_t>(dividend / divisor);
        writeRef(info.op == VaxOpcode::Divl2 ? ops[1] : ops[2], r,
                 Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Incl: {
        const std::uint32_t v = readRef(ops[0], Width::Long);
        const std::uint32_t r = v + 1;
        writeRef(ops[0], r, Width::Long);
        setAddFlags(v, 1, r);
        break;
      }
      case VaxOpcode::Decl: {
        const std::uint32_t v = readRef(ops[0], Width::Long);
        const std::uint32_t r = v - 1;
        writeRef(ops[0], r, Width::Long);
        setSubFlags(v, 1, r);
        break;
      }
      case VaxOpcode::Bisl2: {
        const std::uint32_t r = readRef(ops[0], Width::Long) |
                                readRef(ops[1], Width::Long);
        writeRef(ops[1], r, Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Bicl2: {
        const std::uint32_t r = ~readRef(ops[0], Width::Long) &
                                readRef(ops[1], Width::Long);
        writeRef(ops[1], r, Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Xorl2: {
        const std::uint32_t r = readRef(ops[0], Width::Long) ^
                                readRef(ops[1], Width::Long);
        writeRef(ops[1], r, Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Ashl: {
        const auto cnt =
            static_cast<std::int32_t>(readRef(ops[0], Width::Long));
        const std::uint32_t src = readRef(ops[1], Width::Long);
        std::uint32_t r;
        if (cnt >= 0)
            r = cnt >= 32 ? 0 : src << cnt;
        else {
            const int sh = std::min(-cnt, 31);
            r = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(src) >> sh);
        }
        writeRef(ops[2], r, Width::Long);
        setNZ(r);
        break;
      }
      case VaxOpcode::Cmpl: {
        const std::uint32_t a = readRef(ops[0], Width::Long);
        const std::uint32_t b = readRef(ops[1], Width::Long);
        setSubFlags(a, b, a - b);
        break;
      }
      case VaxOpcode::Tstl:
        setNZ(readRef(ops[0], Width::Long));
        break;
      case VaxOpcode::Cmpb: {
        const std::uint32_t a = readRef(ops[0], Width::Byte) & 0xff;
        const std::uint32_t b = readRef(ops[1], Width::Byte) & 0xff;
        setSubFlags(a, b, a - b);
        break;
      }

      case VaxOpcode::Brb:
      case VaxOpcode::Brw:
        branchIf(true, ops[0]);
        break;
      case VaxOpcode::Beql:
        branchIf(condHolds(Cond::Eq, cc_), ops[0]);
        break;
      case VaxOpcode::Bneq:
        branchIf(condHolds(Cond::Ne, cc_), ops[0]);
        break;
      case VaxOpcode::Blss:
        branchIf(condHolds(Cond::Lt, cc_), ops[0]);
        break;
      case VaxOpcode::Bleq:
        branchIf(condHolds(Cond::Le, cc_), ops[0]);
        break;
      case VaxOpcode::Bgtr:
        branchIf(condHolds(Cond::Gt, cc_), ops[0]);
        break;
      case VaxOpcode::Bgeq:
        branchIf(condHolds(Cond::Ge, cc_), ops[0]);
        break;
      case VaxOpcode::Blssu:
        branchIf(condHolds(Cond::Ltu, cc_), ops[0]);
        break;
      case VaxOpcode::Blequ:
        branchIf(condHolds(Cond::Leu, cc_), ops[0]);
        break;
      case VaxOpcode::Bgtru:
        branchIf(condHolds(Cond::Gtu, cc_), ops[0]);
        break;
      case VaxOpcode::Bgequ:
        branchIf(condHolds(Cond::Geu, cc_), ops[0]);
        break;
      case VaxOpcode::Bvs:
        branchIf(cc_.v, ops[0]);
        break;
      case VaxOpcode::Bvc:
        branchIf(!cc_.v, ops[0]);
        break;
      case VaxOpcode::Jmp:
        if (ops[0].kind != Ref::Kind::Mem)
            fatal("jmp needs an addressable destination");
        regs_[vaxPc] = ops[0].addr;
        ++stats_.branchesTaken;
        break;

      case VaxOpcode::Sobgtr:
      case VaxOpcode::Sobgeq: {
        const std::uint32_t v = readRef(ops[0], Width::Long) - 1;
        writeRef(ops[0], v, Width::Long);
        setNZ(v);
        const auto sv = static_cast<std::int32_t>(v);
        branchIf(info.op == VaxOpcode::Sobgtr ? sv > 0 : sv >= 0,
                 ops[1]);
        break;
      }
      case VaxOpcode::Aoblss:
      case VaxOpcode::Aobleq: {
        const std::uint32_t limit = readRef(ops[0], Width::Long);
        const std::uint32_t v = readRef(ops[1], Width::Long) + 1;
        writeRef(ops[1], v, Width::Long);
        setNZ(v);
        const auto sv = static_cast<std::int32_t>(v);
        const auto sl = static_cast<std::int32_t>(limit);
        branchIf(info.op == VaxOpcode::Aoblss ? sv < sl : sv <= sl,
                 ops[1 + 1]);
        break;
      }

      case VaxOpcode::Calls: {
        const std::uint32_t numArgs = readRef(ops[0], Width::Long);
        if (ops[1].kind != Ref::Kind::Mem)
            fatal("calls needs an addressable destination");
        doCalls(numArgs, ops[1].addr);
        break;
      }
      case VaxOpcode::Ret:
        doRet();
        break;
      case VaxOpcode::Jsb:
        if (ops[0].kind != Ref::Kind::Mem)
            fatal("jsb needs an addressable destination");
        push(regs_[vaxPc]);
        regs_[vaxPc] = ops[0].addr;
        ++stats_.calls;
        ++stats_.callDepth;
        stats_.maxCallDepth =
            std::max(stats_.maxCallDepth, stats_.callDepth);
        break;
      case VaxOpcode::Rsb:
        if (stats_.callDepth == 0)
            fatal("RSB with no active JSB frame");
        regs_[vaxPc] = pop();
        ++stats_.returns;
        --stats_.callDepth;
        break;
      case VaxOpcode::Pushr: {
        const std::uint32_t mask = readRef(ops[0], Width::Long);
        for (int r = 11; r >= 0; --r)
            if (mask & (1u << r))
                push(regs_[static_cast<unsigned>(r)]);
        break;
      }
      case VaxOpcode::Popr: {
        const std::uint32_t mask = readRef(ops[0], Width::Long);
        for (unsigned r = 0; r <= 11; ++r)
            if (mask & (1u << r))
                regs_[r] = pop();
        break;
      }
    }
}

bool
VaxMachine::step()
{
    if (halted_)
        return false;

    const std::uint32_t ipc = regs_[vaxPc];

    // One instruction-cache consultation per instruction, at its
    // start address, before any fetch fault — the fast path mirrors
    // this at the same point (and delegates here for refStep and
    // out-of-range PCs), keeping the two paths lockstep-equivalent.
    if (hier_)
        stats_.cycles += hier_->fetch(ipc);

    const auto opByte = static_cast<VaxOpcode>(fetchByte());
    const VaxOpInfo *info = vaxOpcodeInfo(opByte);
    if (!info)
        fatal(cat("illegal opcode byte 0x", std::hex,
                  static_cast<int>(opByte), " at pc 0x",
                  regs_[vaxPc] - 1));

    // Recorded before execution, so a faulting instruction is the last
    // event in the ring when its fault unwinds (obs/postmortem.hh).
    if (trace_)
        trace_->record({obs::EventKind::Instruction, stats_.instructions,
                        stats_.cycles, ipc, std::string(info->mnemonic)});

    ++stats_.instructions;
    ++stats_.perClass[static_cast<std::size_t>(info->cls)];
    stats_.cycles += info->baseCycles;

    Ref ops[vaxMaxOperands];
    for (unsigned i = 0; i < info->numOperands; ++i)
        ops[i] = decodeOperand(info->operands[i]);

    execute(*info, ops);
    return !halted_;
}

void
VaxMachine::run(std::uint64_t maxSteps)
{
    std::uint64_t steps = 0;
    while (!halted_ && steps < maxSteps) {
        step();
        ++steps;
    }
    if (!halted_)
        fatal(cat("baseline program did not halt within ", maxSteps,
                  " steps"));
}

void
VaxMachine::predecodeAt(std::uint32_t addr, PredecodePayload &out) const
{
    out = PredecodePayload{};

    // Walk the encoding with uncounted peeks, guarding every byte:
    // anything the reference decoder would fault on — stream past
    // memory end, illegal opcode, illegal mode — is left to step(),
    // which raises the exact fault from the exact partial state.
    std::uint32_t cur = addr;
    const auto bail = [&out] { out.refStep = true; };
    const auto canPeek = [&](unsigned n) {
        return static_cast<std::uint64_t>(cur) + n <= mem_.size();
    };
    const auto peek = [&] { return mem_.peekByte(cur++); };
    const auto peekLong = [&] {
        const std::uint32_t lo = peek(), b1 = peek(), b2 = peek(),
                            hi = peek();
        return lo | (b1 << 8) | (b2 << 16) | (hi << 24);
    };

    if (!canPeek(1))
        return bail();
    const auto opByte = static_cast<VaxOpcode>(peek());
    out.info = vaxOpcodeInfo(opByte);
    if (!out.info)
        return bail();

    for (unsigned i = 0; i < out.info->numOperands; ++i) {
        PredecodedSpec &spec = out.specs[i];
        const VaxOpndUse use = out.info->operands[i];

        if (use == VaxOpndUse::Branch8 || use == VaxOpndUse::Branch16) {
            const unsigned n = use == VaxOpndUse::Branch8 ? 1 : 2;
            if (!canPeek(n))
                return bail();
            std::uint32_t raw = peek();
            if (n == 2)
                raw |= static_cast<std::uint32_t>(peek()) << 8;
            spec.kind = PredecodedSpec::Kind::Branch;
            // The reference decoder resolves the target against the
            // PC after the displacement bytes — a static quantity.
            spec.value = cur + static_cast<std::uint32_t>(
                                   sext(raw, n == 1 ? 8 : 16));
            continue;
        }

        Width width = Width::Long;
        if (use == VaxOpndUse::ReadByte || use == VaxOpndUse::WriteByte)
            width = Width::Byte;
        else if (use == VaxOpndUse::ReadHalf ||
                 use == VaxOpndUse::WriteHalf)
            width = Width::Half;
        const unsigned step =
            width == Width::Byte ? 1 : width == Width::Half ? 2 : 4;

        if (!canPeek(1))
            return bail();
        const std::uint8_t specByte = peek();
        const auto modeNibble = static_cast<std::uint8_t>(specByte >> 4);
        const auto rn = static_cast<std::uint8_t>(specByte & 0x0f);

        if (modeNibble <= 3) {
            spec.kind = PredecodedSpec::Kind::ShortLiteral;
            spec.value = specByte & 0x3f;
            continue;
        }

        const auto mode = static_cast<VaxMode>(modeNibble);
        spec.rn = rn;
        spec.step = static_cast<std::uint8_t>(step);

        switch (mode) {
          case VaxMode::Register:
            // Rn = PC is fine: the reference reads/writes the register
            // file at execute time, after the PC has advanced past the
            // whole instruction — which the replay also guarantees.
            spec.kind = PredecodedSpec::Kind::Register;
            break;
          case VaxMode::Deferred:
            if (rn == vaxPc)
                return bail();  // EA depends on mid-stream PC
            spec.kind = PredecodedSpec::Kind::Deferred;
            break;
          case VaxMode::AutoDec:
            if (rn == vaxPc)
                return bail();  // mutates the PC mid-stream
            spec.kind = PredecodedSpec::Kind::AutoDec;
            break;
          case VaxMode::AutoInc:
            if (rn == vaxPc) {
                if (!canPeek(4))
                    return bail();
                spec.kind = PredecodedSpec::Kind::Immediate;
                spec.value = peekLong();
            } else {
                spec.kind = PredecodedSpec::Kind::AutoInc;
            }
            break;
          case VaxMode::AutoIncDef:
            if (rn != vaxPc)
                return bail();  // step() faults on @(Rn)+
            if (!canPeek(4))
                return bail();
            spec.kind = PredecodedSpec::Kind::Absolute;
            spec.value = peekLong();
            break;
          case VaxMode::DispByte:
          case VaxMode::DispWord:
          case VaxMode::DispLong: {
            if (rn == vaxPc)
                return bail();  // EA depends on mid-stream PC
            const unsigned n = mode == VaxMode::DispByte ? 1
                               : mode == VaxMode::DispWord ? 2
                                                           : 4;
            if (!canPeek(n))
                return bail();
            std::uint32_t raw = peek();
            if (n >= 2)
                raw |= static_cast<std::uint32_t>(peek()) << 8;
            if (n == 4) {
                raw |= static_cast<std::uint32_t>(peek()) << 16;
                raw |= static_cast<std::uint32_t>(peek()) << 24;
            }
            spec.kind = PredecodedSpec::Kind::Disp;
            spec.value = n == 4 ? raw
                                : static_cast<std::uint32_t>(
                                      sext(raw, n * 8));
            break;
          }
          default:
            return bail();  // illegal mode nibble: step() faults
        }
        spec.specCycles =
            static_cast<std::uint8_t>(vaxSpecCycles(mode));
    }

    out.len = static_cast<std::uint8_t>(cur - addr);
    for (unsigned i = 0; i < out.len; ++i)
        out.raw[i] = mem_.peekByte(addr + i);
}

RunOutcome
VaxMachine::runFast(std::uint64_t maxSteps)
{
    RunOutcome outcome;

    // A tracer must observe every instruction in decode order; fall
    // back to the reference interpreter so trace semantics (and
    // everything else) are unchanged.
    if (trace_) {
        while (!halted_ && outcome.steps < maxSteps) {
            step();
            ++outcome.steps;
        }
        outcome.halted = halted_;
        return outcome;
    }

    predecode_.sync(mem_);

    while (!halted_ && outcome.steps < maxSteps) {
        const std::uint32_t pc = regs_[vaxPc];

        // A PC outside memory has no cache slot; step() raises the
        // reference fetch fault (fetchByte counts nothing first).
        if (pc >= mem_.size()) {
            step();
            ++outcome.steps;
            continue;
        }

        PredecodeCache::Slot &e = predecode_.slot(pc);
        const PredecodePayload &p = e.payload;
        bool clean = !e.empty() &&
                     PredecodeCache::valid(e, mem_, pc, p.len ? p.len : 1);
        if (!clean) {
            // Stale or never filled: re-peek and revalidate.  An
            // unchanged encoding keeps its decode; only genuinely new
            // bytes pay for a fresh predecode.
            bool same = !e.empty() && p.len != 0 &&
                        static_cast<std::uint64_t>(pc) + p.len <=
                            mem_.size();
            if (same)
                for (unsigned i = 0; i < p.len; ++i)
                    if (e.payload.raw[i] != mem_.peekByte(pc + i)) {
                        same = false;
                        break;
                    }
            if (!same)
                predecodeAt(pc, e.payload);
            PredecodeCache::revalidate(
                e, mem_, pc, e.payload.len ? e.payload.len : 1);
        }

        if (p.refStep) {
            step();
            ++outcome.steps;
            continue;
        }

        // Same per-instruction cache consultation as step(), at the
        // same point (instruction start, before stream accounting).
        if (hier_)
            stats_.cycles += hier_->fetch(pc);

        // Account the instruction stream exactly as the byte-wise
        // reference fetch loop would.
        for (unsigned i = 0; i < p.len; ++i)
            mem_.countFetch();
        stats_.instrBytes += p.len;

        ++stats_.instructions;
        ++stats_.perClass[static_cast<std::size_t>(p.info->cls)];
        stats_.cycles += p.info->baseCycles;

        // Replay the operand specifiers in stream order: specifier
        // cycles, operand counters, and auto-inc/dec register updates
        // happen in the same order and amounts as decodeSpecifier().
        Ref ops[vaxMaxOperands];
        for (unsigned i = 0; i < p.info->numOperands; ++i) {
            const PredecodedSpec &spec = p.specs[i];
            Ref &ref = ops[i];
            stats_.cycles += spec.specCycles;
            switch (spec.kind) {
              case PredecodedSpec::Kind::ShortLiteral:
              case PredecodedSpec::Kind::Immediate:
                ref.kind = Ref::Kind::Literal;
                ref.value = spec.value;
                break;
              case PredecodedSpec::Kind::Register:
                ref.kind = Ref::Kind::Reg;
                ref.reg = spec.rn;
                break;
              case PredecodedSpec::Kind::Deferred:
                ref.kind = Ref::Kind::Mem;
                ref.reg = spec.rn;
                ref.addr = regs_[spec.rn];
                ++stats_.regOperandReads;
                break;
              case PredecodedSpec::Kind::AutoDec:
                regs_[spec.rn] -= spec.step;
                ref.kind = Ref::Kind::Mem;
                ref.addr = regs_[spec.rn];
                ++stats_.regOperandReads;
                ++stats_.regOperandWrites;
                break;
              case PredecodedSpec::Kind::AutoInc:
                ref.kind = Ref::Kind::Mem;
                ref.addr = regs_[spec.rn];
                regs_[spec.rn] += spec.step;
                ++stats_.regOperandReads;
                ++stats_.regOperandWrites;
                break;
              case PredecodedSpec::Kind::Absolute:
                ref.kind = Ref::Kind::Mem;
                ref.addr = spec.value;
                break;
              case PredecodedSpec::Kind::Disp:
                ref.kind = Ref::Kind::Mem;
                ref.addr = regs_[spec.rn] + spec.value;
                ++stats_.regOperandReads;
                break;
              case PredecodedSpec::Kind::Branch:
                ref.kind = Ref::Kind::Branch;
                ref.value = spec.value;
                break;
            }
        }

        // The reference decoder leaves the PC past the whole
        // instruction before execution; branches then overwrite it.
        regs_[vaxPc] = pc + p.len;
        execute(*p.info, ops);
        ++outcome.steps;
    }
    outcome.halted = halted_;
    return outcome;
}

VaxSnapshot
VaxMachine::snapshot() const
{
    VaxSnapshot s;
    s.memorySize = config_.memorySize;
    s.regs = regs_;
    s.cc = cc_;
    s.halted = halted_;
    s.stats = stats_;
    s.memStats = mem_.stats();
    s.pages = mem_.dirtyPages();
    if (hier_)
        s.caches = hier_->snapshot();
    return s;
}

void
VaxMachine::restore(const VaxSnapshot &snap)
{
    if (snap.memorySize != config_.memorySize)
        fatal(cat("snapshot restore: memory size ", snap.memorySize,
                  " != machine's ", config_.memorySize));

    regs_ = snap.regs;
    cc_ = snap.cc;
    halted_ = snap.halted;
    stats_ = snap.stats;

    // restoreContents() adopts the snapshot's page handles in O(pages
    // that differ) and bumps write generations only where content
    // really moved — so the decode cache stays warm across a
    // same-content restore and revalidates itself anywhere it isn't.
    mem_.restoreContents(snap.pages);
    mem_.setStats(snap.memStats);

    // Caches are timing state, not architectural state: each level
    // whose geometry matches the snapshot resumes warm, any other
    // level starts cold (same fork semantics as the RISC machine).
    if (hier_)
        hier_->restore(snap.caches);
}

} // namespace risc1
