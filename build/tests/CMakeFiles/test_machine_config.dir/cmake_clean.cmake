file(REMOVE_RECURSE
  "CMakeFiles/test_machine_config.dir/test_machine_config.cc.o"
  "CMakeFiles/test_machine_config.dir/test_machine_config.cc.o.d"
  "test_machine_config"
  "test_machine_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
