file(REMOVE_RECURSE
  "CMakeFiles/table_code_size.dir/table_code_size.cc.o"
  "CMakeFiles/table_code_size.dir/table_code_size.cc.o.d"
  "table_code_size"
  "table_code_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_code_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
