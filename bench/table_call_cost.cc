/**
 * Experiments E4 + E8 — procedure-call cost (paper Table: cost of
 * CALL/RETURN with register windows vs conventional conventions).
 * Measures, per call/return pair: execution cycles and data-memory
 * words moved, on three machines:
 *   1. RISC I with overlapping register windows (the contribution)
 *   2. RISC I with the no-window ablation (software save/restore)
 *   3. the CISC baseline's frame-building CALLS/RET
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "workloads/workloads.hh"

using namespace risc1;

int
bench::runTableCallCost()
{
    bench::banner(
        "E4/E8", "Procedure-call cost: windows vs memory frames",
        "windows make calls nearly free (near-zero data-memory words "
        "per call); conventional schemes move a frame through memory "
        "every call");

    Table table({"workload", "calls", "win cyc/call", "win words/call",
                 "nowin cyc/call", "nowin words/call", "CISC cyc/call",
                 "CISC words/call"});

    for (const auto &w : allWorkloads()) {
        if (!w.callIntensive)
            continue;

        const RiscRun windowed = runRiscWorkload(w);
        MachineConfig flatCfg;
        flatCfg.windowedCalls = false;
        const RiscRun flat = runRiscWorkload(w, flatCfg);
        const VaxRun cisc = runVaxWorkload(w);

        const double calls = static_cast<double>(windowed.stats.calls);

        // Marginal per-call figures: total data traffic attributable
        // to calls = trap/save traffic (program loads/stores are the
        // algorithm's own and identical across configurations).
        const double winWords =
            static_cast<double>(windowed.stats.spillWords +
                                windowed.stats.fillWords) /
            calls;
        const double flatWords =
            static_cast<double>(flat.stats.softSaveWords +
                                flat.stats.softRestoreWords) /
            calls;
        // CISC: everything except the algorithm's own accesses.  Use
        // the RISC program loads/stores as the algorithm baseline.
        const double ciscCallWords =
            (static_cast<double>(cisc.stats.dataAccesses()) -
             static_cast<double>(windowed.stats.loadCount +
                                 windowed.stats.storeCount)) /
            static_cast<double>(cisc.stats.calls);

        const double winCyc =
            static_cast<double>(windowed.stats.cycles) / calls;
        const double flatCyc =
            static_cast<double>(flat.stats.cycles) / calls;
        const double ciscCyc = static_cast<double>(cisc.stats.cycles) /
                               static_cast<double>(cisc.stats.calls);

        table.addRow({
            w.id,
            Table::num(windowed.stats.calls),
            Table::num(winCyc, 1),
            Table::num(winWords, 1),
            Table::num(flatCyc, 1),
            Table::num(flatWords, 1),
            Table::num(ciscCyc, 1),
            Table::num(std::max(0.0, ciscCallWords), 1),
        });
    }
    table.print(std::cout);

    std::cout
        << "\ncyc/call columns include the whole program (algorithm + "
           "linkage), so they\nshow total cost; words/call isolates "
           "the call-linkage memory traffic that the\npaper's windows "
           "eliminate (E8).  Window traps only spill on deep "
           "excursions,\nso the windowed words/call stays near zero "
           "while frames pay every call.\n";
    return 0;
}
