/** Shared helpers for machine-level tests. */

#ifndef RISC1_TESTS_HELPERS_HH
#define RISC1_TESTS_HELPERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "core/machine.hh"
#include "isa/instruction.hh"

namespace risc1::test {

inline constexpr std::uint32_t kOrg = 0x1000;

/** Load raw instructions at kOrg, append a halt, and reset @p m. */
inline void
loadRaw(Machine &m, const std::vector<Instruction> &insts,
        bool appendHalt = true)
{
    std::uint32_t addr = kOrg;
    for (const auto &inst : insts) {
        m.memory().pokeWord(addr, inst.encode());
        addr += 4;
    }
    if (appendHalt)
        m.memory().pokeWord(addr, Instruction::jmpr(Cond::Alw, 0).encode());
    m.reset(kOrg);
}

/** Assemble @p source, load, and reset @p m. */
inline void
loadAsm(Machine &m, const std::string &source)
{
    const Program prog = assembleRisc(source);
    m.loadProgram(prog);
}

/** Assemble + run to completion on a fresh default machine. */
inline Machine
runAsm(const std::string &source, std::uint64_t maxSteps = 10'000'000)
{
    Machine m;
    loadAsm(m, source);
    m.run(maxSteps);
    return m;
}

} // namespace risc1::test

#endif // RISC1_TESTS_HELPERS_HH
