/**
 * Extension X1 — instruction-cache sensitivity (the follow-on study
 * the paper's fetch-bandwidth discussion motivates, pursued by the
 * Berkeley project after RISC I): sweep a direct-mapped i-cache from
 * 64 B to 8 KiB and report miss rate and cycle overhead.  Small
 * caches already capture the loop-dominated workloads, blunting the
 * E2b fetch premium.
 *
 * Runs on the batch-simulation engine using its snapshot-fork path:
 * each workload is assembled and loaded exactly once, the loaded
 * machine state is captured as a Machine snapshot, and all sweep
 * points (no-cache baseline plus every cache size) fork from that one
 * snapshot instead of re-running the assembler per configuration.
 */

#include <iostream>
#include <vector>

#include "asm/assembler.hh"
#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "sim/artifact.hh"
#include "sim/engine.hh"
#include "target/risc_target.hh"
#include "workloads/workloads.hh"

using namespace risc1;

int
bench::runFigIcacheSweep()
{
    bench::banner(
        "X1", "Instruction-cache sweep (extension study)",
        "a small on-chip i-cache captures the loops, removing most of "
        "the fixed-size-instruction fetch premium");

    const std::vector<std::uint32_t> sizes = {64,  128,  256, 512,
                                              1024, 4096, 8192};

    // Per workload: assemble once, snapshot the freshly loaded
    // machine, and fork every sweep point (1 baseline + |sizes| cache
    // configurations) from that shared snapshot.
    std::vector<sim::SimJob> jobs;
    for (const auto &w : allWorkloads()) {
        Machine loaded;
        loaded.loadProgram(assembleRisc(w.riscSource));
        const auto snap = std::make_shared<target::RiscTargetSnapshot>(
            loaded.snapshot());

        sim::SimJob baseline;
        baseline.id = cat(w.id, "/no-cache");
        baseline.base = snap;
        baseline.expected = w.expected;
        jobs.push_back(std::move(baseline));

        for (const auto size : sizes) {
            sim::SimJob job;
            job.id = cat(w.id, "/", size, "B");
            job.base = snap;
            job.config.risc.icache = CacheConfig{size, 16, 4};
            job.expected = w.expected;
            jobs.push_back(std::move(job));
        }
    }

    const auto results = sim::runBatch(jobs);
    for (const auto &r : results) {
        if (r.status != sim::JobStatus::Ok) {
            std::cerr << "job '" << r.id << "' failed: " << r.error
                      << "\n";
            return 1;
        }
    }

    std::vector<std::string> headers = {"workload", "no-cache cycles"};
    for (const auto size : sizes)
        headers.push_back(std::to_string(size) + "B miss%");
    Table table(std::move(headers));

    const std::size_t perWorkload = 1 + sizes.size();
    std::size_t i = 0;
    for (const auto &w : allWorkloads()) {
        std::vector<std::string> row = {
            w.id,
            Table::num(target::riscStats(*results[i].stats).run.cycles)};
        for (std::size_t k = 1; k < perWorkload; ++k)
            row.push_back(bench::percent(
                1.0 - target::riscStats(*results[i + k].stats)
                          .caches.l1i.value_or(mem::LevelStats{})
                          .hitRate()));
        i += perWorkload;
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nMiss penalty modelled at 4 cycles; geometry: "
                 "direct-mapped, 16-byte lines.\nStatic code is "
                 "small (<300 bytes/workload), so caches >= 512 B hold "
                 "entire\nprograms and miss only on cold start.\n";

    const std::string artifact = sim::writeArtifact(
        "bench/out/fig_icache_sweep.json", "X1", results);
    std::cout << "artifact: " << artifact << "\n";
    return 0;
}
