/**
 * riscserved — the long-lived simulation-as-a-service daemon
 * (docs/SERVER.md).
 *
 * Keeps many machine sessions resident, multiplexes their `run`
 * commands onto one sim::Engine worker pool with quota-sliced
 * round-robin turns, and spools idle sessions to disk past a
 * configurable TTL.  Speaks the framed JSON protocol over a
 * Unix-domain socket and/or localhost TCP.
 *
 *     riscserved --unix riscserved.sock
 *     riscserved --tcp 7031 --workers 4 --ttl-ms 5000
 *
 * Flags:
 *     --unix PATH        listen on a Unix-domain socket (short paths!)
 *     --tcp PORT         listen on 127.0.0.1:PORT (0 = ephemeral; the
 *                        "ready" line prints the bound port)
 *     --workers N        engine worker threads (0 = hardware threads)
 *     --queue N          engine queue bound (backpressure knob)
 *     --quota N          max instructions per scheduling turn
 *     --ttl-ms N         idle eviction threshold (-1 never, 0 asap)
 *     --spool DIR        eviction spool directory
 *     --max-sessions N   session cap
 *     --mem BYTES        default per-session memory
 *
 * Telemetry (docs/OBSERVABILITY.md):
 *     --event-log PATH       structured JSONL event log (appended)
 *     --event-log-level L    debug|info|warn (default info)
 *     --slow-ms MS           log commands slower than MS as warn
 *                            `slow.command` events (0 = off)
 *     --metrics-dump PATH    write the Prometheus text exposition to
 *                            PATH after the drain completes
 *
 * Prints one "riscserved: ready ..." line once listening — scripts
 * wait for it.  SIGINT/SIGTERM drain gracefully: pending runs are
 * failed with "server shutting down", every worker joins, exit 0.
 */

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/logging.hh"
#include "server/protocol.hh"
#include "server/server.hh"

using namespace risc1;

namespace {

int g_signalPipe[2] = {-1, -1};

void
onSignal(int sig)
{
    const unsigned char byte = static_cast<unsigned char>(sig);
    // Async-signal-safe: just poke the main thread awake.
    [[maybe_unused]] const ssize_t n =
        ::write(g_signalPipe[1], &byte, 1);
}

int
usage()
{
    std::cerr
        << "usage: riscserved (--unix PATH | --tcp PORT) [--workers N]\n"
           "                  [--queue N] [--quota N] [--ttl-ms N]\n"
           "                  [--spool DIR] [--max-sessions N] "
           "[--mem BYTES]\n"
           "                  [--event-log PATH] [--event-log-level "
           "debug|info|warn]\n"
           "                  [--slow-ms MS] [--metrics-dump PATH]\n";
    return 2;
}

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    if (value.empty() || value.size() > 18 ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoull(value);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    server::ServiceConfig svc;
    server::ServerConfig net;
    std::string metricsDumpPath;
    svc.spoolDir = "riscserved.spool";

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        std::uint64_t n = 0;
        if (arg == "--unix") {
            const char *v = value();
            if (!v)
                return usage();
            net.unixPath = v;
        } else if (arg == "--tcp") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n > 65535)
                return usage();
            net.tcp = true;
            net.tcpPort = static_cast<std::uint16_t>(n);
        } else if (arg == "--workers") {
            const char *v = value();
            if (!v || !parseU64(v, n))
                return usage();
            svc.workers = static_cast<unsigned>(n);
        } else if (arg == "--queue") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            svc.engineQueue = n;
        } else if (arg == "--quota") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            svc.quota = n;
        } else if (arg == "--ttl-ms") {
            const char *v = value();
            if (!v)
                return usage();
            std::string s = v;
            const bool neg = !s.empty() && s[0] == '-';
            if (neg)
                s.erase(0, 1);
            if (!parseU64(s, n))
                return usage();
            svc.ttlMs = neg ? -std::int64_t(n) : std::int64_t(n);
        } else if (arg == "--spool") {
            const char *v = value();
            if (!v)
                return usage();
            svc.spoolDir = v;
        } else if (arg == "--max-sessions") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            svc.maxSessions = n;
        } else if (arg == "--mem") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            svc.defaultMemBytes = n;
        } else if (arg == "--event-log") {
            const char *v = value();
            if (!v)
                return usage();
            svc.eventLogPath = v;
        } else if (arg == "--event-log-level") {
            const char *v = value();
            if (!v)
                return usage();
            svc.eventLogLevel = v;
        } else if (arg == "--slow-ms") {
            const char *v = value();
            if (!v || !parseU64(v, n))
                return usage();
            svc.slowMs = double(n);
        } else if (arg == "--metrics-dump") {
            const char *v = value();
            if (!v)
                return usage();
            metricsDumpPath = v;
        } else {
            return usage();
        }
    }
    if (net.unixPath.empty() && !net.tcp)
        return usage();

    if (::pipe(g_signalPipe) != 0) {
        std::cerr << "riscserved: pipe: " << std::strerror(errno)
                  << "\n";
        return 1;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    try {
        server::Service service(svc);
        server::SocketServer sockets(service, net);
        sockets.start();

        std::cout << "riscserved: ready";
        if (!net.unixPath.empty())
            std::cout << " unix:" << net.unixPath;
        if (net.tcp)
            std::cout << " tcp:127.0.0.1:" << sockets.tcpPort();
        std::cout << " workers=" << service.engine().workers()
                  << " quota=" << svc.quota << " ttlMs=" << svc.ttlMs
                  << std::endl;

        unsigned char sig = 0;
        while (::read(g_signalPipe[0], &sig, 1) < 0 && errno == EINTR) {
        }
        std::cout << "riscserved: signal " << int(sig)
                  << " received, draining" << std::endl;

        // Drain order: fail pending runs first (their error replies
        // still reach connected clients), then tear down the sockets.
        service.stop();
        sockets.stop();
        if (!metricsDumpPath.empty()) {
            std::ofstream dump(metricsDumpPath);
            if (!dump) {
                std::cerr << "riscserved: cannot write metrics dump "
                          << metricsDumpPath << "\n";
                return 1;
            }
            dump << service.registry().prometheus();
            std::cout << "riscserved: metrics dumped to "
                      << metricsDumpPath << std::endl;
        }
        std::cout << "riscserved: drained, exiting" << std::endl;
        return 0;
    } catch (const std::exception &e) {
        std::cerr << "riscserved: " << e.what() << "\n";
        return 1;
    }
}
