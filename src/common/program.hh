/**
 * @file
 * Loadable program image shared by both assemblers and both machines.
 */

#ifndef RISC1_COMMON_PROGRAM_HH
#define RISC1_COMMON_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace risc1 {

/** Whether a segment holds instructions or data. */
enum class SegmentKind : std::uint8_t { Code, Data };

/** A contiguous block of bytes at a fixed load address. */
struct Segment
{
    std::uint32_t base = 0;
    SegmentKind kind = SegmentKind::Code;
    std::vector<std::uint8_t> bytes;
};

/** An assembled program image. */
struct Program
{
    std::uint32_t entry = 0;
    std::vector<Segment> segments;
    /** Symbol table: label -> address. */
    std::map<std::string, std::uint32_t> symbols;
    /** Static instruction count recorded by the assembler. */
    std::uint64_t staticInstructions = 0;

    /** Total instruction bytes (static code size). */
    std::uint64_t
    codeBytes() const
    {
        std::uint64_t n = 0;
        for (const auto &seg : segments)
            if (seg.kind == SegmentKind::Code)
                n += seg.bytes.size();
        return n;
    }

    /** Total data bytes. */
    std::uint64_t
    dataBytes() const
    {
        std::uint64_t n = 0;
        for (const auto &seg : segments)
            if (seg.kind == SegmentKind::Data)
                n += seg.bytes.size();
        return n;
    }

    /** Address of @p label; throws FatalError when missing. */
    std::uint32_t symbol(const std::string &label) const;
};

} // namespace risc1

#endif // RISC1_COMMON_PROGRAM_HH
