/**
 * @file
 * The generation-validated decode cache shared by every backend's
 * predecoded fast path.
 *
 * Both simulated machines memoize per-address decode work — the RISC I
 * machine one DecodedInst per word-aligned address, the CISC baseline
 * one variable-length instruction record per byte address.  What they
 * share is the invalidation scheme: Memory keeps a monotonic write
 * generation per Memory::genLineBytes-sized line, bumped by every
 * content change (data writes, pokes, loader blocks, clear(), snapshot
 * restore), and each cache slot records the generations of the lines
 * its instruction spans.  A slot whose line generations still match is
 * served without touching memory; a slot whose generations moved must
 * re-fetch its bytes and — only if they really changed — re-decode.
 *
 * There is no explicit flush anywhere: correctness is carried entirely
 * by the generation check, so new machine APIs that mutate memory
 * cannot forget to invalidate.
 *
 * The cache is organized as one lazily-sized slot vector per memory
 * page (Memory::pageBytes), so the resident cost is proportional to
 * the pages code actually executes from, not to the memory size.
 */

#ifndef RISC1_TARGET_DECODE_CACHE_HH
#define RISC1_TARGET_DECODE_CACHE_HH

#include <cstdint>
#include <vector>

#include "memory/memory.hh"

namespace risc1::target {

/**
 * A per-address decode cache.
 *
 * @tparam Payload   backend decode record stored in each slot
 * @tparam SlotShift log2 of the address granularity: 2 for one slot
 *                   per 32-bit word (RISC I), 0 for one slot per byte
 *                   (variable-length CISC encodings)
 */
template <typename Payload, unsigned SlotShift>
class DecodeCache
{
  public:
    /** Never matches a real write generation, so default-constructed
     *  slots always miss. */
    static constexpr std::uint64_t staleGen = ~0ull;

    struct Slot
    {
        Payload payload{};
        /** Write generation of the instruction's first line when the
         *  slot was last validated. */
        std::uint64_t gen = staleGen;
        /** Same for the last line the instruction spans (equal to
         *  @ref gen when the span stays within one line). */
        std::uint64_t lastGen = staleGen;

        /** True until the slot is first filled. */
        bool empty() const { return gen == staleGen; }
    };

    /** Size the page directory to @p mem (cheap when unchanged). */
    void
    sync(const Memory &mem)
    {
        if (pages_.size() != mem.numPages())
            pages_.resize(mem.numPages());
    }

    /** The slot for @p addr; its page is sized on first use. */
    Slot &
    slot(std::uint32_t addr)
    {
        auto &page = pages_[addr / Memory::pageBytes];
        if (page.empty())
            page.resize(Memory::pageBytes >> SlotShift);
        return page[(addr & (Memory::pageBytes - 1)) >> SlotShift];
    }

    /** Is @p s still valid for the @p span bytes at @p addr? */
    static bool
    valid(const Slot &s, const Memory &mem, std::uint32_t addr,
          std::uint32_t span)
    {
        return s.gen == mem.lineGen(addr / Memory::genLineBytes) &&
               s.lastGen ==
                   mem.lineGen((addr + span - 1) / Memory::genLineBytes);
    }

    /** Stamp @p s with the current generations of its span's lines. */
    static void
    revalidate(Slot &s, const Memory &mem, std::uint32_t addr,
               std::uint32_t span)
    {
        s.gen = mem.lineGen(addr / Memory::genLineBytes);
        s.lastGen =
            mem.lineGen((addr + span - 1) / Memory::genLineBytes);
    }

  private:
    std::vector<std::vector<Slot>> pages_;
};

} // namespace risc1::target

#endif // RISC1_TARGET_DECODE_CACHE_HH
