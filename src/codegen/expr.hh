/**
 * @file
 * A miniature expression compiler targeting both simulated ISAs.
 *
 * The paper's benchmarks were compiled from C; this module provides
 * the corresponding (tiny) compiler substrate: an expression tree
 * with a native reference evaluator and code generators for RISC I
 * and the CISC baseline.  Its main job in this repository is
 * differential testing — random expression trees must produce the
 * reference value through assembler + machine on BOTH architectures —
 * plus code-size/speed data points for straight-line compute.
 */

#ifndef RISC1_CODEGEN_EXPR_HH
#define RISC1_CODEGEN_EXPR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.hh"

namespace risc1 {

/** Binary operators available on both target ISAs. */
enum class ExprOp : std::uint8_t
{
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,  ///< logical left shift (rhs masked to 0..7 at build time)
    Shr,  ///< logical right shift
};

/** An expression tree node. */
struct ExprNode
{
    enum class Kind : std::uint8_t { Const, Var, Binary };

    Kind kind = Kind::Const;
    std::uint32_t value = 0;   ///< Const
    unsigned var = 0;          ///< Var: index into the input vector
    ExprOp op = ExprOp::Add;   ///< Binary
    std::unique_ptr<ExprNode> lhs, rhs;

    static std::unique_ptr<ExprNode> constant(std::uint32_t value);
    static std::unique_ptr<ExprNode> variable(unsigned index);
    static std::unique_ptr<ExprNode> binary(ExprOp op,
                                            std::unique_ptr<ExprNode> l,
                                            std::unique_ptr<ExprNode> r);
};

/** Evaluate @p node against @p vars (the native reference). */
std::uint32_t evalExprTree(const ExprNode &node,
                           const std::vector<std::uint32_t> &vars);

/** Number of nodes in the tree. */
std::size_t exprSize(const ExprNode &node);

/** Render the tree as an infix string (debugging aid). */
std::string exprToString(const ExprNode &node);

/**
 * Generate a random expression over @p numVars variables with at most
 * @p maxDepth levels.  Shift amounts are always small constants so
 * both targets agree; all other semantics are full 32-bit wrapping.
 */
std::unique_ptr<ExprNode> randomExpr(Rng &rng, unsigned numVars,
                                     unsigned maxDepth);

/**
 * Compile to a complete RISC I program: loads the variables from a
 * `.word` table and evaluates with a register evaluation stack in the
 * LOCAL registers (r16..r25, i.e. trees up to depth 9 — ample for the
 * generated corpus); the result lands in r1.
 */
std::string compileExprRisc(const ExprNode &node,
                            const std::vector<std::uint32_t> &vars);

/** Compile to a CISC baseline program; result in r0. */
std::string compileExprVax(const ExprNode &node,
                           const std::vector<std::uint32_t> &vars);

} // namespace risc1

#endif // RISC1_CODEGEN_EXPR_HH
