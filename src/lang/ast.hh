/**
 * @file
 * The AST of the RL mini language (docs/LANG.md) — the C-like workload
 * language that escalates the single-expression compiler (codegen/)
 * into whole programs: 32-bit ints, power-of-two global arrays,
 * if/while, function calls with arguments and return values, and an
 * `out()` trace statement.  The same tree is consumed by the
 * reference interpreter (interp.hh), both ISA lowerings (compile.hh),
 * the seeded program generator (gen.hh), and the failure minimizer
 * (minimize.hh), so every node is deep-clonable and value-comparable
 * through its printed form (print.hh).
 */

#ifndef RISC1_LANG_AST_HH
#define RISC1_LANG_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace risc1::lang {

/** Binary operators, lowest-to-highest precedence tiers documented in
 *  docs/LANG.md.  Shifts take literal counts 0..31 (parser-enforced)
 *  so both ISAs lower them with static masks. */
enum class BinOp : std::uint8_t
{
    LOr,   ///< || (short-circuit, yields 0/1)
    LAnd,  ///< && (short-circuit, yields 0/1)
    Or,    ///< |
    Xor,   ///< ^
    And,   ///< &
    Eq,    ///< == (yields 0/1)
    Ne,    ///< !=
    Lt,    ///< <  (signed, yields 0/1)
    Le,    ///< <=
    Gt,    ///< >
    Ge,    ///< >=
    Shl,   ///< << (literal count)
    Shr,   ///< >> (logical, literal count)
    Add,   ///< + (wrapping)
    Sub,   ///< - (wrapping)
};

enum class UnOp : std::uint8_t
{
    Neg,  ///< - (two's complement)
    Not,  ///< ~ (bitwise complement)
    LNot, ///< ! (yields 0/1)
};

/** Expression node kinds. */
enum class ExprKind : std::uint8_t
{
    IntLit,  ///< 32-bit literal
    Var,     ///< local variable or parameter reference
    Global,  ///< global scalar reference
    Index,   ///< global array element (index is masked by size-1)
    Unary,
    Binary,
    Call,    ///< function call with arguments
};

struct Expr
{
    ExprKind kind = ExprKind::IntLit;
    std::uint32_t value = 0;       ///< IntLit; Shl/Shr literal count
    std::string name;              ///< Var/Global/Index/Call
    UnOp unop = UnOp::Neg;
    BinOp binop = BinOp::Add;
    std::unique_ptr<Expr> lhs, rhs;        ///< Unary uses lhs only;
                                           ///< Index uses lhs as index
    std::vector<std::unique_ptr<Expr>> args;  ///< Call

    std::unique_ptr<Expr> clone() const;

    static std::unique_ptr<Expr> lit(std::uint32_t v);
    static std::unique_ptr<Expr> var(std::string n);
    static std::unique_ptr<Expr> global(std::string n);
    static std::unique_ptr<Expr> index(std::string n,
                                       std::unique_ptr<Expr> i);
    static std::unique_ptr<Expr> unary(UnOp op, std::unique_ptr<Expr> e);
    static std::unique_ptr<Expr> binary(BinOp op, std::unique_ptr<Expr> l,
                                        std::unique_ptr<Expr> r);
    static std::unique_ptr<Expr>
    call(std::string n, std::vector<std::unique_ptr<Expr>> a);
};

/** Statement node kinds. */
enum class StmtKind : std::uint8_t
{
    Local,      ///< `int x = e;` — declares and initializes a local
    Assign,     ///< `x = e;` — local or global scalar
    Store,      ///< `a[i] = e;`
    If,         ///< with optional else block
    While,
    Return,     ///< `return e;`
    Out,        ///< `out(e);` appends e to the output trace
    ExprStmt,   ///< bare call for side effects: `f(...);`
};

struct Stmt
{
    StmtKind kind = StmtKind::ExprStmt;
    std::string name;                   ///< Local/Assign/Store target
    std::unique_ptr<Expr> index;        ///< Store
    std::unique_ptr<Expr> expr;         ///< value / condition / call
    std::vector<std::unique_ptr<Stmt>> body;      ///< If-then / While
    std::vector<std::unique_ptr<Stmt>> elseBody;  ///< If-else

    std::unique_ptr<Stmt> clone() const;
};

/** One `int g = k;` or `int a[N];` global. */
struct GlobalDecl
{
    std::string name;
    bool isArray = false;
    std::uint32_t size = 1;   ///< array element count (power of two)
    std::uint32_t init = 0;   ///< scalar initializer
};

struct Function
{
    std::string name;
    std::vector<std::string> params;
    std::vector<std::unique_ptr<Stmt>> body;

    Function clone() const;
};

/** A whole RL program.  Execution begins at `main` (no arguments). */
struct Program
{
    std::vector<GlobalDecl> globals;
    std::vector<Function> functions;

    Program clone() const;

    /** Index of @p name in functions, or -1. */
    int findFunction(const std::string &name) const;
    /** Index of @p name in globals, or -1. */
    int findGlobal(const std::string &name) const;
};

/** Compiler/backends hard limits (see docs/LANG.md). */
inline constexpr unsigned kMaxParams = 4;
inline constexpr unsigned kMaxLocals = 4;   ///< params + locals per function
inline constexpr std::uint32_t kMaxArraySize = 64;
inline constexpr std::uint32_t kOutCap = 64;  ///< stored out() entries

/** Deep-copy helpers for statement/expression lists. */
std::vector<std::unique_ptr<Stmt>>
cloneBody(const std::vector<std::unique_ptr<Stmt>> &body);

/** Total AST node count (statements + expressions), a size metric for
 *  the generator and minimizer. */
std::size_t programNodes(const Program &program);

} // namespace risc1::lang

#endif // RISC1_LANG_AST_HH
