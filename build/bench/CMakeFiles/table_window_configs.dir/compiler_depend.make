# Empty compiler generated dependencies file for table_window_configs.
# This may be replaced when dependencies are built.
