/**
 * @file
 * Wire framing for the riscserved protocol (docs/SERVER.md).
 *
 * Every message is one length-prefixed binary frame with a JSON text
 * payload:
 *
 *     offset  size  field
 *     0       2     magic 0x5331 ("1S", little-endian)
 *     2       1     version (currently 1)
 *     3       1     type (1 = request, 2 = response)
 *     4       4     request id (echoed verbatim in the response)
 *     8       4     payload length in bytes
 *     12      N     payload (UTF-8 JSON document)
 *
 * All integers are little-endian.  The framing layer knows nothing
 * about commands — it only delimits payloads — so it can be fuzzed in
 * isolation: FrameReader consumes arbitrary byte streams incrementally
 * and reports structural errors (bad magic, bad version, bad type,
 * oversized payload) as values, never by crashing or throwing.  After
 * an error the stream is unrecoverable (framing has no resync marker)
 * and the connection must close.
 */

#ifndef RISC1_SERVER_FRAME_HH
#define RISC1_SERVER_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace risc1::server {

/** Frame type tags (the header's `type` byte). */
enum class FrameType : std::uint8_t
{
    Request = 1,
    Response = 2,
};

inline constexpr std::uint16_t kFrameMagic = 0x5331;
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 12;

/** Default payload cap; a frame claiming more is a framing error. */
inline constexpr std::size_t kDefaultMaxPayload = 1u << 20;

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Request;
    std::uint32_t id = 0;
    std::string payload;  ///< JSON text (not yet parsed)
};

/** Why a FrameReader refused its input stream. */
enum class FrameError : std::uint8_t
{
    None = 0,
    BadMagic,
    BadVersion,
    BadType,
    Oversized,  ///< payload length above the configured cap
};

/** Human-readable name for @p error. */
std::string_view frameErrorName(FrameError error);

/** Encode one frame (header + payload) for the wire. */
std::vector<std::uint8_t> encodeFrame(FrameType type, std::uint32_t id,
                                      std::string_view payload);

/**
 * Incremental frame decoder.  Feed it raw bytes as they arrive; take
 * completed frames out with next().  Once error() is set the reader
 * ignores further input and next() never yields again — callers must
 * drop the connection.
 */
class FrameReader
{
  public:
    explicit FrameReader(std::size_t maxPayload = kDefaultMaxPayload)
        : maxPayload_(maxPayload)
    {
    }

    /** Consume @p size bytes of stream input (no-op after an error). */
    void feed(const std::uint8_t *data, std::size_t size);

    void
    feed(std::string_view bytes)
    {
        feed(reinterpret_cast<const std::uint8_t *>(bytes.data()),
             bytes.size());
    }

    void
    feed(const std::vector<std::uint8_t> &bytes)
    {
        feed(bytes.data(), bytes.size());
    }

    /** Pop the next completed frame, if any. */
    std::optional<Frame> next();

    /** The first structural error encountered, if any. */
    FrameError error() const { return error_; }

    /** Bytes buffered toward an incomplete frame (for tests). */
    std::size_t pendingBytes() const { return buffer_.size(); }

  private:
    void decodeLoop();

    std::size_t maxPayload_;
    std::vector<std::uint8_t> buffer_;
    std::vector<Frame> ready_;
    FrameError error_ = FrameError::None;
};

} // namespace risc1::server

#endif // RISC1_SERVER_FRAME_HH
