#include "sim/artifact.hh"

#include <filesystem>
#include <fstream>

#include "common/logging.hh"

namespace risc1::sim {

void
writeResultJson(JsonWriter &w, const SimResult &result,
                const ArtifactOptions &opts)
{
    w.beginObject()
        .field("index", static_cast<std::uint64_t>(result.index))
        .field("id", result.id)
        .field("machine", result.backend)
        .field("status", jobStatusName(result.status))
        .field("error", result.error)
        .field("postmortem", result.postmortem)
        .field("steps", result.steps)
        .field("checksum", result.checksum)
        .field("codeBytes", result.codeBytes);

    if (opts.metrics) {
        w.key("metrics");
        result.metrics.writeJson(w);
    }

    if (result.stats) {
        result.stats->writeJson(w);
    } else {
        // Unknown backend that never ran: keep the schema's mandatory
        // "stats" key with an empty block.
        w.key("stats").beginObject().endObject();
    }

    w.key("memory");
    result.mem.writeJson(w);
    w.endObject();
}

std::string
resultSetToJson(std::string_view batchName,
                const std::vector<SimResult> &results,
                const ArtifactOptions &opts)
{
    JsonWriter w;
    w.beginObject().field("batch", batchName).field(
        "jobs", static_cast<std::uint64_t>(results.size()));
    if (opts.metrics) {
        w.key("metrics");
        opts.metrics->writeJson(w);
    }
    w.key("results").beginArray();
    for (const auto &result : results)
        writeResultJson(w, result, opts);
    w.endArray().endObject();
    return w.str();
}

std::string
writeArtifact(const std::string &path, std::string_view batchName,
              const std::vector<SimResult> &results,
              const ArtifactOptions &opts)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
        if (ec)
            fatal(cat("cannot create artifact directory ",
                      target.parent_path().string(), ": ", ec.message()));
    }
    std::ofstream out(target, std::ios::trunc);
    if (!out)
        fatal(cat("cannot open artifact file ", path));
    out << resultSetToJson(batchName, results, opts);
    if (!out)
        fatal(cat("write to artifact file ", path, " failed"));
    return path;
}

} // namespace risc1::sim
