/**
 * Ablation A1 — register-file configurations (DESIGN.md design-choice
 * ablation): the resource-constrained 6-window "Gold"-class file vs
 * the full 8-window design the paper argues for, vs the no-window
 * ablation (software save/restore).  Shows what the extra windows buy
 * and what removing them costs.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/workloads.hh"

using namespace risc1;

int
main()
{
    bench::banner(
        "A1", "Register-file ablation: 6 windows vs 8 vs none",
        "the full 8-window file removes most residual overflow traps "
        "of the smaller file; dropping windows entirely reintroduces "
        "per-call memory traffic");

    Table table({"workload", "cfg", "cycles", "ovf", "unf",
                 "call mem words", "vs full"});

    for (const auto &w : allWorkloads()) {
        if (!w.callIntensive)
            continue;

        MachineConfig full;  // 8 windows
        MachineConfig gold;
        gold.windows = WindowConfig::gold();
        MachineConfig none;
        none.windowedCalls = false;

        const RiscRun rFull = runRiscWorkload(w, full);
        const RiscRun rGold = runRiscWorkload(w, gold);
        const RiscRun rNone = runRiscWorkload(w, none);

        const auto callWords = [](const RiscRun &r) {
            return r.stats.spillWords + r.stats.fillWords +
                   r.stats.softSaveWords + r.stats.softRestoreWords;
        };
        const auto row = [&](const char *name, const RiscRun &r) {
            table.addRow({
                w.id,
                name,
                Table::num(r.stats.cycles),
                Table::num(r.stats.windowOverflows),
                Table::num(r.stats.windowUnderflows),
                Table::num(callWords(r)),
                Table::num(static_cast<double>(r.stats.cycles) /
                               static_cast<double>(rFull.stats.cycles),
                           2),
            });
        };
        row("full-8w", rFull);
        row("gold-6w", rGold);
        row("no-win", rNone);
        table.addSeparator();
    }
    table.print(std::cout);

    std::cout << "\n'call mem words' = spill/fill traffic (windowed) "
                 "or software save/restore\ntraffic (no-win); 'vs "
                 "full' = cycle ratio against the 8-window design.\n";
    return 0;
}
