/**
 * Cross-ISA integration tests: every workload must produce the
 * reference checksum on BOTH machines — this is what makes the
 * size/speed/traffic comparisons in the benches meaningful.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "workloads/workloads.hh"

namespace risc1 {
namespace {

class WorkloadCross : public ::testing::TestWithParam<std::string>
{
  protected:
    const Workload &wl() const { return findWorkload(GetParam()); }
};

TEST_P(WorkloadCross, RiscChecksumMatchesReference)
{
    const RiscRun run = runRiscWorkload(wl());
    EXPECT_EQ(run.checksum, wl().expected);
    EXPECT_GT(run.stats.instructions, 0u);
    EXPECT_GE(run.stats.cycles, run.stats.instructions);
}

TEST_P(WorkloadCross, VaxChecksumMatchesReference)
{
    const VaxRun run = runVaxWorkload(wl());
    EXPECT_EQ(run.checksum, wl().expected);
    EXPECT_GT(run.stats.instructions, 0u);
    // Microcoded: CPI must exceed 1 by a clear margin.
    EXPECT_GT(run.stats.cycles, run.stats.instructions * 2);
}

TEST_P(WorkloadCross, RiscResultIsWindowCountInvariant)
{
    for (const unsigned windows : {2u, 4u, 8u}) {
        MachineConfig cfg;
        cfg.windows.numWindows = windows;
        const RiscRun run = runRiscWorkload(wl(), cfg);
        EXPECT_EQ(run.checksum, wl().expected) << "windows=" << windows;
    }
}

TEST_P(WorkloadCross, RiscResultSurvivesWindowAblation)
{
    MachineConfig cfg;
    cfg.windowedCalls = false;
    const RiscRun run = runRiscWorkload(wl(), cfg);
    EXPECT_EQ(run.checksum, wl().expected);
}

TEST_P(WorkloadCross, CallCountsBalance)
{
    const RiscRun run = runRiscWorkload(wl());
    EXPECT_EQ(run.stats.calls, run.stats.returns);
    const VaxRun vrun = runVaxWorkload(wl());
    EXPECT_EQ(vrun.stats.calls, vrun.stats.returns);
}

std::vector<std::string>
workloadIds()
{
    std::vector<std::string> ids;
    for (const auto &w : allWorkloads())
        ids.push_back(w.id);
    return ids;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadCross,
                         ::testing::ValuesIn(workloadIds()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, ElevenDistinctWorkloads)
{
    const auto &all = allWorkloads();
    EXPECT_EQ(all.size(), 11u);
    std::set<std::string> ids;
    for (const auto &w : all) {
        ids.insert(w.id);
        EXPECT_FALSE(w.riscSource.empty());
        EXPECT_FALSE(w.vaxSource.empty());
        EXPECT_FALSE(w.provenance.empty());
    }
    EXPECT_EQ(ids.size(), all.size());
}

TEST(WorkloadRegistry, LookupUnknownFails)
{
    EXPECT_THROW(findWorkload("nope"), FatalError);
}

TEST(WorkloadRegistry, CallIntensiveFlagMatchesBehaviour)
{
    for (const auto &w : allWorkloads()) {
        const RiscRun run = runRiscWorkload(w);
        const double callShare =
            static_cast<double>(run.stats.calls) /
            static_cast<double>(run.stats.instructions);
        if (w.callIntensive) {
            EXPECT_GT(callShare, 0.01) << w.id;
        }
    }
}

TEST(WorkloadRegistry, CodeSizesNonTrivialOnBothIsas)
{
    for (const auto &w : allWorkloads()) {
        const RiscRun r = runRiscWorkload(w);
        const VaxRun v = runVaxWorkload(w);
        EXPECT_GT(r.codeBytes, 40u) << w.id;
        EXPECT_GT(v.codeBytes, 20u) << w.id;
        // The variable-length CISC encoding is denser.
        EXPECT_LT(v.codeBytes, r.codeBytes) << w.id;
    }
}

} // namespace
} // namespace risc1
