# Empty compiler generated dependencies file for test_machine_windows.
# This may be replaced when dependencies are built.
