#include "common/program.hh"

#include "common/logging.hh"

namespace risc1 {

std::uint32_t
Program::symbol(const std::string &label) const
{
    const auto it = symbols.find(label);
    if (it == symbols.end())
        fatal(cat("unknown symbol '", label, "'"));
    return it->second;
}

} // namespace risc1
