/**
 * Extension X2 — memory-hierarchy sensitivity on both backends (the
 * composable mem::Hierarchy study; see docs/MEMORY.md).  Each
 * workload runs flat (no caches), with a small split L1, and with the
 * same L1 backed by a write-back L2 — on RISC I and on the CISC
 * baseline alike, through the same ISA-agnostic hierarchy model.  The
 * point of interest is how much of each backend's cycle count is
 * memory-penalty time: the CISC's denser encoding fetches fewer
 * instruction bytes, but its memory-operand addressing modes expose
 * far more data traffic to the hierarchy.
 *
 * Runs on the batch-simulation engine; one job per
 * (workload, backend, configuration) triple.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "experiments.hh"
#include "mem/hierarchy.hh"
#include "sim/artifact.hh"
#include "sim/engine.hh"
#include "workloads/workloads.hh"

using namespace risc1;

namespace {

/** The three sweep points, applied identically to both backends. */
mem::HierarchyConfig
hierarchyFor(int point)
{
    mem::HierarchyConfig h;
    if (point >= 1) {
        h.l1i = mem::LevelConfig{256, 16, 4};
        h.l1d = mem::LevelConfig{256, 16, 4};
    }
    if (point >= 2)
        h.l2 = mem::LevelConfig{1024, 32, 12, mem::WritePolicy::WriteBack};
    return h;
}

constexpr const char *kPointNames[] = {"flat", "l1", "l1+l2"};
constexpr int kPoints = 3;

} // namespace

int
bench::runFigMemHierarchy()
{
    bench::banner(
        "X2", "Memory-hierarchy sweep, RISC I vs the CISC baseline",
        "the same composable hierarchy fits both ISAs; the CISC "
        "baseline's memory-operand addressing exposes more data "
        "traffic to it than RISC I's load/store discipline");

    // Jobs per workload: 3 RISC points then 3 CISC points, in
    // submission order so the table can walk the results linearly.
    std::vector<sim::SimJob> jobs;
    for (const auto &w : allWorkloads()) {
        for (const char *backend : {"risc", "vax"}) {
            for (int p = 0; p < kPoints; ++p) {
                sim::SimJob job;
                job.id = cat(w.id, "/", backend, "/", kPointNames[p]);
                job.backend = backend;
                job.source = std::string(backend) == "risc"
                                 ? w.riscSource
                                 : w.vaxSource;
                const mem::HierarchyConfig h = hierarchyFor(p);
                job.config.risc.caches = h;
                job.config.vax.caches = h;
                job.expected = w.expected;
                jobs.push_back(std::move(job));
            }
        }
    }

    const auto results = sim::runBatch(jobs);
    for (const auto &r : results) {
        if (r.status != sim::JobStatus::Ok) {
            std::cerr << "job '" << r.id << "' failed: " << r.error
                      << "\n";
            return 1;
        }
    }

    Table table({"workload", "backend", "flat cycles", "L1 penalty",
                 "L1 ovh", "L1+L2 penalty", "L1+L2 ovh", "L2 wb"});

    std::size_t i = 0;
    for (const auto &w : allWorkloads()) {
        for (const char *backend : {"RISC", "CISC"}) {
            const auto &flat = *results[i].stats;
            const auto &l1 = *results[i + 1].stats;
            const auto &l2 = *results[i + 2].stats;
            i += kPoints;

            const std::uint64_t base = flat.cycles();
            const std::uint64_t l1Pen =
                l1.memHierarchy().penaltyCycles();
            const std::uint64_t l2Pen =
                l2.memHierarchy().penaltyCycles();
            const std::uint64_t writebacks =
                l2.memHierarchy().l2 ? l2.memHierarchy().l2->writebacks
                                     : 0;
            table.addRow({
                w.id,
                backend,
                Table::num(base),
                Table::num(l1Pen),
                bench::percent(double(l1Pen) / double(base)),
                Table::num(l2Pen),
                bench::percent(double(l2Pen) / double(base)),
                Table::num(writebacks),
            });
        }
    }
    table.print(std::cout);

    std::cout << "\nSweep points: flat (no hierarchy); l1 = split "
                 "256B/16B/4cy write-through\nL1I+L1D; l1+l2 adds a "
                 "1KiB/32B/12cy write-back L2 behind both.  'ovh' "
                 "is\npenalty cycles over the flat cycle count; "
                 "'L2 wb' counts dirty-line\nwritebacks charged by "
                 "the write-back policy (docs/MEMORY.md).\n";

    const std::string artifact = sim::writeArtifact(
        "bench/out/fig_mem_hierarchy.json", "X2", results);
    std::cout << "artifact: " << artifact << "\n";
    return 0;
}
