#include "obs/postmortem.hh"

#include <sstream>

namespace risc1::obs {

std::string
renderPostmortem(const Trace &trace)
{
    const std::vector<TraceEvent> events = trace.tail();
    if (events.empty())
        return "";

    std::ostringstream os;
    os << "last " << events.size() << " of " << trace.recorded()
       << " traced events:\n";
    TextSink sink(os);
    for (const TraceEvent &ev : events)
        sink.event(ev);
    return os.str();
}

} // namespace risc1::obs
