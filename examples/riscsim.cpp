/**
 * riscsim — the command-line driver: assemble and run a RISC I (or
 * CISC baseline) assembly file and report results.
 *
 *   $ ./riscsim prog.s                 # run on RISC I
 *   $ ./riscsim --cisc prog.s          # run on the CISC baseline
 *   $ ./riscsim --windows 4 prog.s     # window-count override
 *   $ ./riscsim --no-windows prog.s    # single-window ablation
 *   $ ./riscsim --trace prog.s         # per-instruction trace
 *   $ ./riscsim --trace-jsonl t.jsonl prog.s  # machine-readable trace
 *   $ ./riscsim --disasm prog.s        # disassemble, don't run
 *   $ ./riscsim --reorganize prog.s    # fill delay slots, then run
 *   $ ./riscsim --l1i 1024,16,4 prog.s # fit a memory hierarchy
 *   $ ./riscsim --l1d 4096,16,4 --l2 65536,32,20,wb prog.s
 *
 * Cache-level specs (--l1i/--l1d/--l2, either backend) use the same
 * `size,line,missPenalty[,wt|wb]` form and parser as riscbatch job
 * files (docs/MEMORY.md), so the two front-ends cannot drift.
 *
 * Tracing goes through the observability layer (src/obs/): --trace
 * prints one line per executed instruction (plus window traps and
 * interrupts) to stdout, --trace-jsonl writes the same event stream as
 * JSON lines to a file; both work on either backend.  See
 * docs/OBSERVABILITY.md for the formats.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/reorganizer.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"
#include "core/machine.hh"
#include "isa/disasm.hh"
#include "mem/config.hh"
#include "obs/trace.hh"
#include "vax/vassembler.hh"
#include "vax/vdisasm.hh"
#include "vax/vmachine.hh"

using namespace risc1;

namespace {

int
usage()
{
    std::cerr << "usage: riscsim [--cisc] [--windows N] [--no-windows] "
                 "[--trace] [--disasm]\n               "
                 "[--trace-jsonl FILE] [--max-steps N] "
                 "[--l1i SPEC] [--l1d SPEC] [--l2 SPEC] <file.s>\n"
                 "       cache SPEC: size,line,missPenalty[,wt|wb]\n";
    return 2;
}

/** Per-level cache summary, same layout on either backend. */
void
printMemStats(const mem::HierarchyStats &stats)
{
    const auto show = [](const char *name,
                         const std::optional<mem::LevelStats> &s) {
        if (!s)
            return;
        std::printf("%s:          %llu hits, %llu misses (hit rate "
                    "%.3f), %llu writebacks, %llu penalty cycles\n",
                    name,
                    static_cast<unsigned long long>(s->hits),
                    static_cast<unsigned long long>(s->misses),
                    s->hitRate(),
                    static_cast<unsigned long long>(s->writebacks),
                    static_cast<unsigned long long>(s->penaltyCycles));
    };
    show("l1i", stats.l1i);
    show("l1d", stats.l1d);
    show("l2 ", stats.l2);
}

/**
 * The tracer requested on the command line, plus the sinks and streams
 * it writes through (sinks are non-owning, so they live here).
 */
struct CliTrace
{
    bool enabled() const { return text || jsonl; }

    /** Build the Trace; valid until this object is destroyed. */
    obs::Trace *
    build(bool textOut, const std::string &jsonlPath)
    {
        if (textOut)
            text.emplace(std::cout);
        if (!jsonlPath.empty()) {
            jsonlFile.open(jsonlPath, std::ios::trunc);
            if (!jsonlFile)
                fatal("cannot open trace file '" + jsonlPath + "'");
            jsonl.emplace(jsonlFile);
        }
        if (!enabled())
            return nullptr;
        trace.emplace(/*capacity=*/64);
        if (text)
            trace->addSink(*text);
        if (jsonl)
            trace->addSink(*jsonl);
        return &*trace;
    }

    void
    finish()
    {
        if (trace)
            trace->flush();
    }

    std::optional<obs::TextSink> text;
    std::ofstream jsonlFile;
    std::optional<obs::JsonlSink> jsonl;
    std::optional<obs::Trace> trace;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '" + path + "'");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

int
runRisc(const std::string &source, unsigned windows, bool windowed,
        bool trace, const std::string &traceJsonl, bool disasmOnly,
        bool reorganize, std::uint64_t maxSteps,
        const mem::HierarchyConfig &caches)
{
    Program program = assembleRisc(source);
    if (reorganize) {
        ReorgResult result = fillDelaySlots(program);
        std::cout << "reorganiser: " << result.slotsFilled << " of "
                  << result.candidates << " nop slot(s) filled\n";
        program = std::move(result.program);
    }

    if (disasmOnly) {
        for (const auto &seg : program.segments) {
            if (seg.kind != SegmentKind::Code)
                continue;
            for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
                std::uint32_t word = 0;
                for (int b = 3; b >= 0; --b)
                    word = (word << 8) |
                           seg.bytes[i + static_cast<std::size_t>(b)];
                const std::uint32_t addr =
                    seg.base + static_cast<std::uint32_t>(i);
                std::printf("%08x:  %08x  %s\n", addr, word,
                            disassembleWord(word).c_str());
            }
        }
        return 0;
    }

    MachineConfig config;
    config.windows.numWindows = windows;
    config.windowedCalls = windowed;
    config.caches = caches;
    Machine machine(config);
    machine.loadProgram(program);
    CliTrace tracer;
    machine.setTrace(tracer.build(trace, traceJsonl));
    machine.run(maxSteps);
    tracer.finish();

    std::cout << machine.stats().summary();
    printMemStats(machine.memHierarchyStats());
    std::cout << "registers:\n";
    for (unsigned r = 0; r < 32; r += 4) {
        for (unsigned c = 0; c < 4; ++c)
            std::printf("  r%-2u = %10u", r + c, machine.reg(r + c));
        std::printf("\n");
    }
    return 0;
}

int
runCisc(const std::string &source, bool trace,
        const std::string &traceJsonl, bool disasmOnly,
        std::uint64_t maxSteps, const mem::HierarchyConfig &caches)
{
    const Program program = assembleVax(source);
    if (disasmOnly) {
        for (const auto &seg : program.segments) {
            if (seg.kind != SegmentKind::Code)
                continue;
            for (const auto &line :
                 vaxDisassembleBlock(seg.bytes, seg.base))
                std::printf("%08x:  %s\n", line.address,
                            line.text.c_str());
        }
        return 0;
    }

    VaxConfig config;
    config.caches = caches;
    VaxMachine machine(config);
    machine.loadProgram(program);
    CliTrace tracer;
    machine.setTrace(tracer.build(trace, traceJsonl));
    machine.run(maxSteps);
    tracer.finish();

    const VaxStats &s = machine.stats();
    std::cout << "cycles:       " << s.cycles << "\n"
              << "instructions: " << s.instructions << "\n"
              << "CPI:          "
              << static_cast<double>(s.cycles) /
                     static_cast<double>(s.instructions)
              << "\n"
              << "calls:        " << s.calls << "\n"
              << "data refs:    " << s.dataAccesses() << "\n";
    printMemStats(machine.memHierarchyStats());
    std::cout << "registers:\n";
    for (unsigned r = 0; r < 16; r += 4) {
        for (unsigned c = 0; c < 4; ++c)
            std::printf("  r%-2u = %10u", r + c, machine.reg(r + c));
        std::printf("\n");
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool cisc = false, trace = false, disasmOnly = false;
    bool reorganize = false;
    bool windowed = true;
    unsigned windows = 8;
    std::uint64_t maxSteps = 200'000'000;
    std::string path, traceJsonl;
    mem::HierarchyConfig caches;

    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        for (std::size_t i = 0; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "--cisc") {
                cisc = true;
            } else if (arg == "--trace") {
                trace = true;
            } else if (arg == "--trace-jsonl" && i + 1 < args.size()) {
                traceJsonl = args[++i];
            } else if (arg == "--disasm") {
                disasmOnly = true;
            } else if (arg == "--reorganize") {
                reorganize = true;
            } else if (arg == "--no-windows") {
                windowed = false;
            } else if (arg == "--windows" && i + 1 < args.size()) {
                windows = static_cast<unsigned>(std::stoul(args[++i]));
            } else if (arg == "--max-steps" && i + 1 < args.size()) {
                maxSteps = std::stoull(args[++i]);
            } else if (arg == "--l1i" && i + 1 < args.size()) {
                caches.l1i =
                    mem::parseLevelSpec(args[++i], "--l1i");
            } else if (arg == "--l1d" && i + 1 < args.size()) {
                caches.l1d =
                    mem::parseLevelSpec(args[++i], "--l1d");
            } else if (arg == "--l2" && i + 1 < args.size()) {
                caches.l2 =
                    mem::parseLevelSpec(args[++i], "--l2");
            } else if (!arg.empty() && arg[0] == '-') {
                return usage();
            } else {
                path = arg;
            }
        }
        if (path.empty())
            return usage();

        const std::string source = readFile(path);
        return cisc ? runCisc(source, trace, traceJsonl, disasmOnly,
                              maxSteps, caches)
                    : runRisc(source, windows, windowed, trace,
                              traceJsonl, disasmOnly, reorganize,
                              maxSteps, caches);
    } catch (const FatalError &e) {
        std::cerr << "riscsim: " << e.what() << "\n";
        return 1;
    }
}
