/**
 * Wire framing (server/frame.hh): encode/decode round-trips, byte-at-
 * a-time reassembly, every structural rejection (bad magic, bad
 * version, bad type, oversized payload), and a seeded fuzz of the
 * incremental parser — FrameReader consumes hostile byte streams and
 * must fail as a value, never by crashing (run under ASan/UBSan).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "server/frame.hh"

using namespace risc1;
using namespace risc1::server;

namespace {

std::vector<std::uint8_t>
concat(const std::vector<std::uint8_t> &a,
       const std::vector<std::uint8_t> &b)
{
    std::vector<std::uint8_t> out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

} // namespace

TEST(ServerFrame, EncodesHeaderLayout)
{
    const auto bytes = encodeFrame(FrameType::Request, 0x11223344,
                                   "ab");
    ASSERT_EQ(bytes.size(), kFrameHeaderBytes + 2);
    EXPECT_EQ(bytes[0], 0x31); // magic lo ("1")
    EXPECT_EQ(bytes[1], 0x53); // magic hi ("S")
    EXPECT_EQ(bytes[2], kProtocolVersion);
    EXPECT_EQ(bytes[3], 1); // request
    EXPECT_EQ(bytes[4], 0x44); // id, little-endian
    EXPECT_EQ(bytes[7], 0x11);
    EXPECT_EQ(bytes[8], 2); // length
    EXPECT_EQ(bytes[12], 'a');
}

TEST(ServerFrame, RoundTripsOneFrame)
{
    FrameReader reader;
    reader.feed(encodeFrame(FrameType::Response, 7, "{\"ok\":true}"));
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, FrameType::Response);
    EXPECT_EQ(frame->id, 7u);
    EXPECT_EQ(frame->payload, "{\"ok\":true}");
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.error(), FrameError::None);
}

TEST(ServerFrame, ReassemblesByteAtATime)
{
    const auto bytes = encodeFrame(FrameType::Request, 42, "payload");
    FrameReader reader;
    for (const std::uint8_t b : bytes) {
        EXPECT_FALSE(reader.next().has_value());
        reader.feed(&b, 1);
    }
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->id, 42u);
    EXPECT_EQ(frame->payload, "payload");
}

TEST(ServerFrame, DecodesPipelinedFrames)
{
    const auto two = concat(encodeFrame(FrameType::Request, 1, "one"),
                            encodeFrame(FrameType::Request, 2, "two"));
    FrameReader reader;
    reader.feed(two.data(), two.size());
    EXPECT_EQ(reader.next()->payload, "one");
    EXPECT_EQ(reader.next()->payload, "two");
    EXPECT_FALSE(reader.next().has_value());
}

TEST(ServerFrame, EmptyPayloadIsValid)
{
    FrameReader reader;
    reader.feed(encodeFrame(FrameType::Request, 9, ""));
    const auto frame = reader.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->payload, "");
}

TEST(ServerFrame, RejectsBadMagic)
{
    auto bytes = encodeFrame(FrameType::Request, 1, "x");
    bytes[1] ^= 0xff;
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_EQ(reader.error(), FrameError::BadMagic);
    EXPECT_FALSE(reader.next().has_value());
}

TEST(ServerFrame, RejectsBadVersion)
{
    auto bytes = encodeFrame(FrameType::Request, 1, "x");
    bytes[2] = 99;
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_EQ(reader.error(), FrameError::BadVersion);
}

TEST(ServerFrame, RejectsBadType)
{
    auto bytes = encodeFrame(FrameType::Request, 1, "x");
    bytes[3] = 3;
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_EQ(reader.error(), FrameError::BadType);
}

TEST(ServerFrame, RejectsOversizedPayloadWithoutBuffering)
{
    // A header claiming 16 MiB against a 1 KiB cap must fail from the
    // header alone — the reader never waits for (or allocates) the
    // claimed payload.
    FrameReader reader(1024);
    std::vector<std::uint8_t> header =
        encodeFrame(FrameType::Request, 1, "");
    header[8] = 0;
    header[9] = 0;
    header[10] = 0;
    header[11] = 1; // length = 16 MiB
    reader.feed(header.data(), header.size());
    EXPECT_EQ(reader.error(), FrameError::Oversized);
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(ServerFrame, PayloadAtCapIsAccepted)
{
    FrameReader reader(8);
    reader.feed(encodeFrame(FrameType::Request, 1, "12345678"));
    ASSERT_TRUE(reader.next().has_value());
    EXPECT_EQ(reader.error(), FrameError::None);
}

TEST(ServerFrame, ErrorStopsFurtherDecoding)
{
    // A good frame followed by garbage: the good frame survives, the
    // error sticks, and later feeds are ignored.
    auto bytes = encodeFrame(FrameType::Request, 5, "ok");
    const std::vector<std::uint8_t> junk(kFrameHeaderBytes, 0xee);
    const auto stream = concat(bytes, junk);
    FrameReader reader;
    reader.feed(stream.data(), stream.size());
    EXPECT_EQ(reader.next()->payload, "ok");
    EXPECT_EQ(reader.error(), FrameError::BadMagic);

    const auto more = encodeFrame(FrameType::Request, 6, "late");
    reader.feed(more.data(), more.size());
    EXPECT_FALSE(reader.next().has_value());
}

TEST(ServerFrame, TruncatedFrameStaysPending)
{
    const auto bytes = encodeFrame(FrameType::Request, 3, "abcdef");
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size() - 3);
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_EQ(reader.error(), FrameError::None);
    EXPECT_GT(reader.pendingBytes(), 0u);
    reader.feed(bytes.data() + bytes.size() - 3, 3);
    EXPECT_EQ(reader.next()->payload, "abcdef");
}

TEST(ServerFrame, FuzzedStreamsNeverCrash)
{
    // Seeded fuzz: random mutations of valid frames plus pure noise,
    // fed in random-sized chunks.  The reader must either produce
    // frames or set an error — no crashes, hangs, or unbounded
    // buffering (ASan/UBSan-checked in CI).
    Rng rng(0xf5a3e);
    for (int iter = 0; iter < 1500; ++iter) {
        std::vector<std::uint8_t> stream;
        const unsigned pieces = 1 + unsigned(rng.below(4));
        for (unsigned p = 0; p < pieces; ++p) {
            if (rng.chance(2, 3)) {
                std::string payload(rng.below(40), 'x');
                auto f = encodeFrame(rng.chance(1, 2)
                                         ? FrameType::Request
                                         : FrameType::Response,
                                     std::uint32_t(rng.next()), payload);
                const std::size_t flips = rng.below(3);
                for (std::size_t i = 0; i < flips; ++i)
                    f[rng.below(f.size())] ^=
                        std::uint8_t(1 + rng.below(255));
                stream.insert(stream.end(), f.begin(), f.end());
            } else {
                const std::size_t len = rng.below(32);
                for (std::size_t i = 0; i < len; ++i)
                    stream.push_back(std::uint8_t(rng.next()));
            }
        }

        FrameReader reader(4096);
        std::size_t pos = 0;
        while (pos < stream.size()) {
            const std::size_t chunk =
                std::min<std::size_t>(1 + rng.below(17),
                                      stream.size() - pos);
            reader.feed(stream.data() + pos, chunk);
            pos += chunk;
            while (reader.next().has_value()) {
            }
        }
        // Invariant: after an error the buffer is dropped.
        if (reader.error() != FrameError::None)
            EXPECT_EQ(reader.pendingBytes(), 0u);
    }
}
