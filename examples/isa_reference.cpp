/**
 * ISA reference: prints the paper's Table I equivalent — the complete
 * 31-instruction RISC I set with formats, classes, and an example
 * rendering of each instruction through the disassembler.
 *
 *   $ ./isa_reference
 */

#include <iostream>

#include "common/table.hh"
#include "isa/disasm.hh"
#include "isa/instruction.hh"

using namespace risc1;

namespace {

const char *
className(InstClass cls)
{
    switch (cls) {
      case InstClass::Alu: return "arithmetic/logic";
      case InstClass::Load: return "memory load";
      case InstClass::Store: return "memory store";
      case InstClass::Jump: return "jump";
      case InstClass::CallRet: return "call/return";
      case InstClass::Special: return "special";
    }
    return "?";
}

/** A representative instance of each opcode for the example column. */
Instruction
sample(const OpcodeInfo &info)
{
    switch (info.op) {
      case Opcode::Ldhi:
        return Instruction::ldhi(1, 0x123);
      case Opcode::Jmp:
        return Instruction::jmp(Cond::Eq, 2, 8);
      case Opcode::Jmpr:
        return Instruction::jmpr(Cond::Alw, -16);
      case Opcode::Call:
        return Instruction::call(31, 2, 0);
      case Opcode::Callr:
        return Instruction::callr(31, 64);
      case Opcode::Ret:
        return Instruction::ret(31, 8);
      case Opcode::Reti: {
        Instruction inst = Instruction::ret(31, 8);
        inst.op = Opcode::Reti;
        return inst;
      }
      case Opcode::Calli: {
        Instruction inst;
        inst.op = Opcode::Calli;
        inst.rd = 16;
        return inst;
      }
      case Opcode::Gtlpc:
      case Opcode::Getpsw: {
        Instruction inst;
        inst.op = info.op;
        inst.rd = 1;
        return inst;
      }
      case Opcode::Putpsw: {
        Instruction inst;
        inst.op = Opcode::Putpsw;
        inst.rs1 = 1;
        return inst;
      }
      default:
        if (info.cls == InstClass::Load)
            return Instruction::load(info.op, 1, 2, 4);
        if (info.cls == InstClass::Store)
            return Instruction::store(info.op, 1, 2, 4);
        return Instruction::alu(info.op, 1, 2, 3);
    }
}

} // namespace

int
main()
{
    std::cout << "RISC I instruction set (" << numOpcodes
              << " instructions, two 32-bit formats)\n\n";

    Table table({"#", "mnemonic", "class", "format", "scc?", "example",
                 "encoding"});
    for (int i = 0; i < numOpcodes; ++i) {
        const OpcodeInfo &info = allOpcodes()[i];
        const Instruction inst = sample(info);
        char hex[16];
        std::snprintf(hex, sizeof(hex), "0x%08x", inst.encode());
        table.addRow({
            std::to_string(i + 1),
            std::string(info.mnemonic),
            className(info.cls),
            info.format == Format::Short ? "short" : "long(Y)",
            info.maySetCc ? "yes" : "no",
            disassemble(inst),
            hex,
        });
    }
    table.print(std::cout);

    std::cout
        << "\nVisible registers: r0 (=0), r1-r9 global, r10-r15 LOW "
           "(outgoing args),\nr16-r25 LOCAL, r26-r31 HIGH (incoming "
           "args).  CALL slides the window so the\ncaller's LOW "
           "becomes the callee's HIGH; every transfer has one delay "
           "slot.\n";
    return 0;
}
