# Empty compiler generated dependencies file for test_bitfield.
# This may be replaced when dependencies are built.
