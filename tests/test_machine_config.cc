/** Machine configuration and resource-boundary tests. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "helpers.hh"

namespace risc1 {
namespace {

TEST(MachineConfig, GoldPresetRuns)
{
    MachineConfig cfg;
    cfg.windows = WindowConfig::gold();
    Machine m(cfg);
    EXPECT_EQ(m.config().windows.numWindows, 6u);
    test::loadAsm(m, "start: ldi r1, 9\n halt\n");
    m.run();
    EXPECT_EQ(m.reg(1), 9u);
}

TEST(MachineConfig, TinyMemoryWorks)
{
    MachineConfig cfg;
    cfg.memorySize = 64 << 10;
    cfg.saveAreaTop = 0xf000;
    cfg.softAreaTop = 0xe000;
    Machine m(cfg);
    test::loadAsm(m, "start: ldi r1, 1\n halt\n");
    m.run();
    EXPECT_EQ(m.reg(1), 1u);
}

TEST(MachineConfig, BadSaveAreaRejected)
{
    MachineConfig cfg;
    cfg.saveAreaTop = 0x1002; // unaligned
    EXPECT_THROW(Machine{cfg}, FatalError);

    MachineConfig cfg2;
    cfg2.memorySize = 64 << 10;
    cfg2.saveAreaTop = 0x00f00000; // outside memory
    EXPECT_THROW(Machine{cfg2}, FatalError);
}

TEST(MachineConfig, SpillStackExhaustionIsAFatalError)
{
    // Recursion deep enough to run the register-save stack into the
    // bottom of memory must fail loudly, not corrupt state.
    MachineConfig cfg;
    cfg.memorySize = 64 << 10;
    cfg.saveAreaTop = 0x1400;  // 1 KiB above the code at 0x1000...
    cfg.softAreaTop = 0x1400;
    cfg.windows.numWindows = 2; // every call spills 64 bytes
    Machine m(cfg);
    test::loadAsm(m, R"(
start:  ldi   r10, 100000
        call  sum
        nop
        halt
sum:    cmp   r26, 0
        bne   rec
        nop
        ret
        nop
rec:    sub   r10, r26, 1
        call  sum
        nop
        ret
        nop
)");
    EXPECT_THROW(m.run(), FatalError);
}

TEST(MachineConfig, SoftFrameWordsScaleAblationCost)
{
    const std::string src = R"(
start:  ldi   r2, 20
loop:   mov   r10, r2
        call  leaf
        nop
        dec   r2
        cmp   r2, 0
        bne   loop
        nop
        halt
leaf:   ret
        nop
)";
    auto cyclesWith = [&](unsigned words) {
        MachineConfig cfg;
        cfg.windowedCalls = false;
        cfg.softFrameWords = words;
        Machine m(cfg);
        test::loadAsm(m, src);
        m.run();
        return m.stats().cycles;
    };
    const auto c4 = cyclesWith(4);
    const auto c8 = cyclesWith(8);
    const auto c16 = cyclesWith(16);
    EXPECT_LT(c4, c8);
    EXPECT_LT(c8, c16);
    // Each extra word costs softPerWordCycles (2) on call AND return:
    // 20 calls * 2 directions * 2 cycles * extra words.
    EXPECT_EQ(c8 - c4, 20u * 2 * 2 * 4);
}

TEST(MachineConfig, CustomTimingScalesCycles)
{
    MachineConfig slowLoads;
    slowLoads.timing.loadCycles = 10;
    Machine slow(slowLoads);
    Machine normal;
    const std::string src = R"(
start:  ldi   r2, 0x2000
        ldl   r1, (r2)
        ldl   r3, (r2)
        halt
)";
    test::loadAsm(slow, src);
    test::loadAsm(normal, src);
    slow.run();
    normal.run();
    EXPECT_EQ(slow.stats().cycles - normal.stats().cycles,
              2u * (10 - 2));
}

TEST(MachineConfig, StepAfterHaltIsIdempotent)
{
    Machine m;
    test::loadAsm(m, "start: halt\n");
    m.run();
    const auto cycles = m.stats().cycles;
    EXPECT_FALSE(m.step());
    EXPECT_FALSE(m.step());
    EXPECT_EQ(m.stats().cycles, cycles);
}

TEST(MachineConfig, ResetReplaysIdentically)
{
    Machine m;
    test::loadAsm(m, R"(
start:  clr   r1
        ldi   r2, 50
loop:   add   r1, r1, r2
        dec   r2
        cmp   r2, 0
        bne   loop
        nop
        halt
)");
    m.run();
    const auto first = m.stats().cycles;
    const auto r1 = m.reg(1);
    m.reset(0x1000);
    m.run();
    EXPECT_EQ(m.stats().cycles, first);
    EXPECT_EQ(m.reg(1), r1);
}

} // namespace
} // namespace risc1
