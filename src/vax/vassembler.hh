/**
 * @file
 * Two-pass assembler for the CISC baseline machine.
 *
 * Syntax (VAX-flavoured, operands src -> dst):
 *
 *     ; comment
 *             .org  0x1000
 *     start:  movl  #5, r0
 *             addl3 r0, r1, r2
 *             movl  12(r3), r4        ; displacement
 *             movl  (r5)+, r6         ; autoincrement
 *             pushl r0
 *             calls #1, func
 *             halt
 *     func:   .mask 0x0c              ; entry mask: save r2, r3
 *             movl  4(ap), r0         ; first argument
 *             ret
 *
 * Operand forms: #expr (literal/immediate), rN/ap/fp/sp/pc, (rN),
 * (rN)+, -(rN), expr(rN), @expr (absolute), bare expr (absolute, or a
 * branch displacement for branch opcodes).
 *
 * Directives: the common set (.org .word .half .byte .space .ascii
 * .asciz .align .equ .entry) plus `.mask <expr>` emitting the 16-bit
 * procedure entry mask CALLS expects.
 */

#ifndef RISC1_VAX_VASSEMBLER_HH
#define RISC1_VAX_VASSEMBLER_HH

#include <string>

#include "common/program.hh"

namespace risc1 {

/** Options for the baseline assembler. */
struct VaxAsmOptions
{
    std::uint32_t defaultOrg = 0x1000;
};

/**
 * Assemble baseline (CISC) source into a program image.
 * @throws FatalError with line information on any error.
 */
Program assembleVax(const std::string &source,
                    const VaxAsmOptions &options = VaxAsmOptions{});

} // namespace risc1

#endif // RISC1_VAX_VASSEMBLER_HH
