# Empty compiler generated dependencies file for test_reorganizer.
# This may be replaced when dependencies are built.
