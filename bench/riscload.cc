/**
 * riscload — load generator for riscserved (docs/SERVER.md).
 *
 * Opens N connections, creates M sessions on each, then fires a
 * seeded, scripted command mix (run/step/regs/peek/stats/snapshot+
 * fork) at the daemon and reports command-latency percentiles and
 * session-creation throughput:
 *
 *     riscload --unix riscserved.sock --connections 4 --sessions 256 \
 *              --ops 2000 --out bench/out/BENCH_server.json
 *
 * Flags:
 *     --unix PATH / --tcp PORT   where the daemon listens
 *     --connections N            client threads (one connection each)
 *     --sessions M               sessions created per connection
 *     --ops K                    scripted commands per connection
 *     --seed S                   PRNG seed (default 1; deterministic
 *                                command script per seed)
 *     --workload ID              program each session runs
 *     --mem BYTES                per-session memory ("mem" on create)
 *     --run-steps N              maxSteps for scripted `run` commands
 *     --out FILE                 write the JSON report (BENCH_server)
 *     --p99-limit-ms X           exit 1 when p99 latency exceeds X
 *     --keep                     skip the final destroy pass
 *     --server-metrics-out FILE  write the daemon's Prometheus text
 *                                exposition (scraped via `telemetry`)
 *
 * After the load completes, riscload scrapes the daemon's `telemetry`
 * command and cross-checks the server-observed per-command p99 against
 * its own client-observed p99 (docs/OBSERVABILITY.md): server time is
 * a subset of client time (no framing, no socket), so serverP99 must
 * not exceed 2x clientP99 — the gate the report's `server` block
 * records.  It also micro-benchmarks obs::Histogram::record so the
 * registry's hot-path cost is pinned in the same artifact.
 *
 * Exit status: 0 on success, 1 when any command failed, the p99 limit
 * was exceeded, or a telemetry gate failed, 2 on usage errors.
 */

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "obs/registry.hh"
#include "server/client.hh"

using namespace risc1;
using Clock = std::chrono::steady_clock;

namespace {

struct LoadConfig
{
    std::string unixPath;
    bool tcp = false;
    std::uint16_t tcpPort = 0;
    unsigned connections = 4;
    unsigned sessions = 64;
    unsigned ops = 500;
    std::uint64_t seed = 1;
    std::string workload = "fib_rec";
    std::uint64_t memBytes = 256 * 1024;
    std::uint64_t runSteps = 20'000;
    std::string outPath;
    std::string serverMetricsOut;
    double p99LimitMs = 0.0; // 0 = no limit
    bool keep = false;
};

/** Per-command-kind latency samples (milliseconds). */
struct CommandSamples
{
    const char *name;
    std::vector<double> ms;
};

struct WorkerReport
{
    std::vector<double> createMs;  ///< session-creation latencies
    std::vector<CommandSamples> perCommand;
    std::uint64_t errors = 0;
    std::string firstError;
};

double
msSince(Clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - from)
        .count();
}

// One percentile definition, shared with the server-side histograms
// (obs/registry.hh) so the cross-check below compares like with like.
double
percentile(const std::vector<double> &sorted, double p)
{
    return obs::percentileSorted(sorted, p);
}

/** The scripted mix: cumulative weights out of 100. */
enum class Op { Run, Step, Regs, Peek, Stats, SnapshotFork };

Op
pickOp(Rng &rng)
{
    const std::uint64_t roll = rng.below(100);
    if (roll < 35)
        return Op::Run;
    if (roll < 55)
        return Op::Step;
    if (roll < 70)
        return Op::Regs;
    if (roll < 85)
        return Op::Peek;
    if (roll < 95)
        return Op::Stats;
    return Op::SnapshotFork;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Run:
        return "run";
      case Op::Step:
        return "step";
      case Op::Regs:
        return "regs";
      case Op::Peek:
        return "peek";
      case Op::Stats:
        return "stats";
      case Op::SnapshotFork:
        return "snapshotFork";
    }
    return "?";
}

void
workerMain(const LoadConfig &cfg, unsigned lane, WorkerReport &report)
{
    for (Op op : {Op::Run, Op::Step, Op::Regs, Op::Peek, Op::Stats,
                  Op::SnapshotFork})
        report.perCommand.push_back({opName(op), {}});
    const auto samplesFor = [&report](Op op) -> std::vector<double> & {
        return report.perCommand[std::size_t(op)].ms;
    };

    try {
        server::Client client =
            cfg.tcp ? server::Client::connectTcp(cfg.tcpPort)
                    : server::Client::connectUnix(cfg.unixPath);

        // Alternate backends across sessions so both machines are
        // resident at once.
        std::vector<std::string> ids;
        ids.reserve(cfg.sessions);
        for (unsigned s = 0; s < cfg.sessions; ++s) {
            const char *backend = s % 2 == 0 ? "risc" : "vax";
            const auto t0 = Clock::now();
            const JsonValue resp = client.callOk(
                cat("{\"cmd\":\"create\",\"backend\":\"", backend,
                    "\",\"workload\":\"", cfg.workload,
                    "\",\"mem\":", cfg.memBytes, "}"));
            report.createMs.push_back(msSince(t0));
            ids.push_back(resp.stringOr("session", ""));
        }

        Rng rng(cfg.seed * 1000003 + lane);
        for (unsigned i = 0; i < cfg.ops; ++i) {
            const std::string &id = ids[rng.below(ids.size())];
            const Op op = pickOp(rng);
            const auto t0 = Clock::now();
            try {
                switch (op) {
                  case Op::Run:
                    client.callOk(cat("{\"cmd\":\"run\",\"session\":\"",
                                      id, "\",\"maxSteps\":",
                                      cfg.runSteps, "}"));
                    break;
                  case Op::Step:
                    client.callOk(cat("{\"cmd\":\"step\",\"session\":\"",
                                      id, "\",\"count\":",
                                      1 + rng.below(64), "}"));
                    break;
                  case Op::Regs:
                    client.callOk(cat("{\"cmd\":\"regs\",\"session\":\"",
                                      id, "\"}"));
                    break;
                  case Op::Peek:
                    client.callOk(cat("{\"cmd\":\"peek\",\"session\":\"",
                                      id, "\",\"addr\":",
                                      4 * rng.below(64), ",\"count\":",
                                      1 + rng.below(16), "}"));
                    break;
                  case Op::Stats:
                    client.callOk(cat("{\"cmd\":\"stats\",\"session\":\"",
                                      id, "\"}"));
                    break;
                  case Op::SnapshotFork: {
                    const JsonValue snap = client.callOk(
                        cat("{\"cmd\":\"snapshot\",\"session\":\"", id,
                            "\"}"));
                    const std::string snapId =
                        snap.stringOr("snapshot", "");
                    const JsonValue fork = client.callOk(
                        cat("{\"cmd\":\"fork\",\"snapshot\":\"", snapId,
                            "\"}"));
                    client.callOk(
                        cat("{\"cmd\":\"destroy\",\"session\":\"",
                            fork.stringOr("session", ""), "\"}"));
                    client.callOk(cat("{\"cmd\":\"drop\",\"snapshot\":\"",
                                      snapId, "\"}"));
                    break;
                  }
                }
                samplesFor(op).push_back(msSince(t0));
            } catch (const std::exception &e) {
                ++report.errors;
                if (report.firstError.empty())
                    report.firstError = e.what();
            }
        }

        if (!cfg.keep)
            for (const std::string &id : ids)
                client.callOk(cat("{\"cmd\":\"destroy\",\"session\":\"",
                                  id, "\"}"));
    } catch (const std::exception &e) {
        ++report.errors;
        if (report.firstError.empty())
            report.firstError = e.what();
    }
}

int
usage()
{
    std::cerr
        << "usage: riscload (--unix PATH | --tcp PORT)\n"
           "                [--connections N] [--sessions M] [--ops K]\n"
           "                [--seed S] [--workload ID] [--mem BYTES]\n"
           "                [--run-steps N] [--out FILE]\n"
           "                [--p99-limit-ms X] [--keep]\n"
           "                [--server-metrics-out FILE]\n";
    return 2;
}

/** Server-observed latency for one command, from the `telemetry`
 *  scrape ("cmd.<name>.ns" histogram, converted to milliseconds). */
struct ServerQuantiles
{
    bool present = false;
    std::uint64_t count = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
};

ServerQuantiles
scrapeQuantiles(const JsonValue &telemetry, const std::string &cmd)
{
    ServerQuantiles q;
    const JsonValue *histograms = telemetry.find("histograms");
    if (!histograms)
        return q;
    const JsonValue *h = histograms->find(cat("cmd.", cmd, ".ns"));
    if (!h)
        return q;
    q.present = true;
    q.count = h->u64Or("count", 0);
    if (const JsonValue *p = h->find("p50"))
        q.p50Ms = p->asDouble() / 1e6;
    if (const JsonValue *p = h->find("p99"))
        q.p99Ms = p->asDouble() / 1e6;
    return q;
}

/**
 * The registry's hot-path cost: nanoseconds per Histogram::record,
 * measured over a million records spread across the bucket range.
 * This is what "no measurable steps/sec regression with no sinks
 * attached" rests on — a record is a handful of relaxed atomics, so
 * even one per quota-slice (~100k instructions) is noise.
 */
constexpr std::uint64_t kOverheadRecords = 1'000'000;
constexpr double kOverheadLimitNs = 250.0; // generous for sanitizers

double
measureRecordNs()
{
    obs::Histogram h;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < kOverheadRecords; ++i)
        h.record(i * 977 + 13);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - t0);
    return double(ns.count()) / double(kOverheadRecords);
}

bool
parseU64(const std::string &value, std::uint64_t &out)
{
    if (value.empty() || value.size() > 18 ||
        value.find_first_not_of("0123456789") != std::string::npos)
        return false;
    out = std::stoull(value);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    LoadConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            return ++i < argc ? argv[i] : nullptr;
        };
        std::uint64_t n = 0;
        if (arg == "--unix") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.unixPath = v;
        } else if (arg == "--tcp") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n > 65535)
                return usage();
            cfg.tcp = true;
            cfg.tcpPort = static_cast<std::uint16_t>(n);
        } else if (arg == "--connections") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            cfg.connections = static_cast<unsigned>(n);
        } else if (arg == "--sessions") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            cfg.sessions = static_cast<unsigned>(n);
        } else if (arg == "--ops") {
            const char *v = value();
            if (!v || !parseU64(v, n))
                return usage();
            cfg.ops = static_cast<unsigned>(n);
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v || !parseU64(v, n))
                return usage();
            cfg.seed = n;
        } else if (arg == "--workload") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.workload = v;
        } else if (arg == "--mem") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            cfg.memBytes = n;
        } else if (arg == "--run-steps") {
            const char *v = value();
            if (!v || !parseU64(v, n) || n == 0)
                return usage();
            cfg.runSteps = n;
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.outPath = v;
        } else if (arg == "--server-metrics-out") {
            const char *v = value();
            if (!v)
                return usage();
            cfg.serverMetricsOut = v;
        } else if (arg == "--p99-limit-ms") {
            const char *v = value();
            if (!v)
                return usage();
            try {
                cfg.p99LimitMs = std::stod(v);
            } catch (const std::exception &) {
                return usage();
            }
        } else if (arg == "--keep") {
            cfg.keep = true;
        } else {
            return usage();
        }
    }
    if (cfg.unixPath.empty() && !cfg.tcp)
        return usage();

    std::vector<WorkerReport> reports(cfg.connections);
    std::vector<std::thread> threads;
    threads.reserve(cfg.connections);
    const auto start = Clock::now();
    for (unsigned c = 0; c < cfg.connections; ++c)
        threads.emplace_back(workerMain, std::cref(cfg), c,
                             std::ref(reports[c]));
    for (auto &t : threads)
        t.join();
    const double wallMs = msSince(start);

    // Merge.
    std::vector<double> all;
    std::vector<double> creates;
    std::vector<CommandSamples> merged;
    std::uint64_t errors = 0;
    std::string firstError;
    std::uint64_t ops = 0;
    for (const WorkerReport &r : reports) {
        creates.insert(creates.end(), r.createMs.begin(),
                       r.createMs.end());
        errors += r.errors;
        if (firstError.empty())
            firstError = r.firstError;
        for (const CommandSamples &c : r.perCommand) {
            auto it = std::find_if(merged.begin(), merged.end(),
                                   [&c](const CommandSamples &m) {
                                       return std::strcmp(m.name,
                                                          c.name) == 0;
                                   });
            if (it == merged.end()) {
                merged.push_back({c.name, {}});
                it = merged.end() - 1;
            }
            it->ms.insert(it->ms.end(), c.ms.begin(), c.ms.end());
            all.insert(all.end(), c.ms.begin(), c.ms.end());
            ops += c.ms.size();
        }
    }
    std::sort(all.begin(), all.end());
    std::sort(creates.begin(), creates.end());
    for (CommandSamples &c : merged)
        std::sort(c.ms.begin(), c.ms.end());

    // Scrape the daemon's own view of the load over a fresh
    // connection: the full registry as JSON for the p99 cross-check,
    // and optionally the Prometheus exposition for --server-metrics-out.
    bool scraped = false;
    std::string scrapeError;
    JsonValue telemetry;
    std::uint64_t serverUptimeMs = 0;
    try {
        server::Client client =
            cfg.tcp ? server::Client::connectTcp(cfg.tcpPort)
                    : server::Client::connectUnix(cfg.unixPath);
        const JsonValue resp =
            client.callOk("{\"cmd\":\"telemetry\"}");
        serverUptimeMs = resp.u64Or("uptimeMs", 0);
        if (const JsonValue *t = resp.find("telemetry"))
            telemetry = *t;
        scraped = true;
        if (!cfg.serverMetricsOut.empty()) {
            const JsonValue prom = client.callOk(
                "{\"cmd\":\"telemetry\",\"format\":\"prometheus\"}");
            std::ofstream out(cfg.serverMetricsOut);
            if (!out)
                fatal(cat("cannot write ", cfg.serverMetricsOut));
            out << prom.stringOr("exposition", "");
            std::cout << "riscload: server metrics written to "
                      << cfg.serverMetricsOut << "\n";
        }
    } catch (const std::exception &e) {
        scrapeError = e.what();
    }

    // Server-vs-client p99 cross-check: the server measures
    // accept-to-reply, a strict subset of the client's
    // send-to-receive, so serverP99 > 2x clientP99 means the two
    // views of the same load disagree.  Gated only where both sides
    // have enough samples for a stable tail.
    struct CrossCheck
    {
        const char *name;
        std::uint64_t clientCount;
        double clientP50Ms;
        double clientP99Ms;
        ServerQuantiles server;
        bool gated;
        bool pass;
    };
    std::vector<CrossCheck> crossChecks;
    bool crossCheckOk = true;
    if (scraped) {
        for (const CommandSamples &c : merged) {
            if (std::strcmp(c.name, "snapshotFork") == 0)
                continue; // composite op; no single server histogram
            CrossCheck check{};
            check.name = c.name;
            check.clientCount = c.ms.size();
            check.clientP50Ms = percentile(c.ms, 0.50);
            check.clientP99Ms = percentile(c.ms, 0.99);
            check.server = scrapeQuantiles(telemetry, c.name);
            check.gated = check.server.present &&
                          check.server.count >= 20 &&
                          check.clientCount >= 20 &&
                          check.clientP99Ms >= 0.01;
            check.pass =
                !check.gated ||
                check.server.p99Ms <= 2.0 * check.clientP99Ms + 0.05;
            if (!check.pass)
                crossCheckOk = false;
            crossChecks.push_back(check);
        }
    }

    const double nsPerRecord = measureRecordNs();
    const bool overheadOk = nsPerRecord < kOverheadLimitNs;

    const double p50 = percentile(all, 0.50);
    const double p90 = percentile(all, 0.90);
    const double p99 = percentile(all, 0.99);
    const double opsPerSec =
        wallMs > 0.0 ? double(ops) / (wallMs / 1e3) : 0.0;
    const double createWallMs = creates.empty() ? 0.0 : [&] {
        double total = 0.0;
        for (const double ms : creates)
            total += ms;
        return total;
    }();
    const double sessionsPerSec =
        createWallMs > 0.0
            ? double(creates.size()) /
                  (createWallMs / 1e3 / double(cfg.connections))
            : 0.0;

    JsonWriter w;
    w.beginObject()
        .field("bench", "server")
        .field("connections", std::uint64_t(cfg.connections))
        .field("sessionsPerConnection", std::uint64_t(cfg.sessions))
        .field("sessions", std::uint64_t(creates.size()))
        .field("ops", ops)
        .field("errors", errors)
        .field("wallMs", wallMs)
        .field("opsPerSec", opsPerSec)
        .field("sessionsPerSec", sessionsPerSec)
        .field("seed", cfg.seed)
        .field("workload", cfg.workload)
        .field("runSteps", cfg.runSteps);
    w.key("latencyMs")
        .beginObject()
        .field("p50", p50)
        .field("p90", p90)
        .field("p99", p99)
        .field("max", all.empty() ? 0.0 : all.back())
        .endObject();
    w.key("createMs")
        .beginObject()
        .field("p50", percentile(creates, 0.50))
        .field("p99", percentile(creates, 0.99))
        .field("max", creates.empty() ? 0.0 : creates.back())
        .endObject();
    w.key("perCommand").beginObject();
    for (const CommandSamples &c : merged) {
        w.key(c.name)
            .beginObject()
            .field("count", std::uint64_t(c.ms.size()))
            .field("p50", percentile(c.ms, 0.50))
            .field("p99", percentile(c.ms, 0.99))
            .endObject();
    }
    w.endObject();
    w.key("server")
        .beginObject()
        .field("scraped", scraped)
        .field("uptimeMs", serverUptimeMs)
        .field("p99Within2x", crossCheckOk);
    w.key("perCommand").beginObject();
    for (const CrossCheck &check : crossChecks) {
        w.key(check.name)
            .beginObject()
            .field("clientCount", check.clientCount)
            .field("clientP50Ms", check.clientP50Ms)
            .field("clientP99Ms", check.clientP99Ms)
            .field("serverCount", check.server.count)
            .field("serverP50Ms", check.server.p50Ms)
            .field("serverP99Ms", check.server.p99Ms)
            .field("ratio", check.clientP99Ms > 0.0
                                ? check.server.p99Ms / check.clientP99Ms
                                : 0.0)
            .field("gated", check.gated)
            .field("pass", check.pass)
            .endObject();
    }
    w.endObject().endObject();
    w.key("registryOverhead")
        .beginObject()
        .field("records", kOverheadRecords)
        .field("nsPerRecord", nsPerRecord)
        .field("limitNsPerRecord", kOverheadLimitNs)
        .field("pass", overheadOk)
        .endObject();
    w.endObject();

    const std::string json = w.str();
    if (!cfg.outPath.empty()) {
        const auto parent =
            std::filesystem::path(cfg.outPath).parent_path();
        if (!parent.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(parent, ec);
        }
        std::ofstream out(cfg.outPath);
        if (!out) {
            std::cerr << "riscload: cannot write " << cfg.outPath
                      << "\n";
            return 1;
        }
        out << json << "\n";
        std::cout << "riscload: report written to " << cfg.outPath
                  << "\n";
    }

    std::cout << "riscload: " << creates.size() << " sessions, " << ops
              << " ops in " << wallMs << " ms (" << opsPerSec
              << " ops/s, " << sessionsPerSec
              << " sessions/s), p50=" << p50 << "ms p99=" << p99
              << "ms, errors=" << errors << "\n";
    if (errors != 0) {
        std::cerr << "riscload: first error: " << firstError << "\n";
        return 1;
    }
    if (cfg.p99LimitMs > 0.0 && p99 > cfg.p99LimitMs) {
        std::cerr << "riscload: p99 " << p99 << " ms exceeds limit "
                  << cfg.p99LimitMs << " ms\n";
        return 1;
    }
    if (!scraped) {
        std::cerr << "riscload: telemetry scrape failed: "
                  << scrapeError << "\n";
        return 1;
    }
    if (!crossCheckOk) {
        for (const CrossCheck &check : crossChecks)
            if (!check.pass)
                std::cerr << "riscload: " << check.name
                          << ": server p99 " << check.server.p99Ms
                          << " ms exceeds 2x client p99 "
                          << check.clientP99Ms << " ms\n";
        return 1;
    }
    if (!overheadOk) {
        std::cerr << "riscload: registry overhead " << nsPerRecord
                  << " ns/record exceeds limit " << kOverheadLimitNs
                  << " ns\n";
        return 1;
    }
    return 0;
}
