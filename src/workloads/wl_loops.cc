/**
 * @file
 * The loop-dominated workloads: recursive quicksort, the sieve of
 * Eratosthenes, and a subscript-heavy "puzzle" kernel.
 */

#include "workloads/workloads.hh"

#include <array>

namespace risc1 {

namespace {

constexpr unsigned kSortCount = 64;
constexpr unsigned kSieveLimit = 1000;
constexpr unsigned kPuzzleWords = 64;
constexpr unsigned kPuzzleIters = 40;

std::array<std::uint32_t, kSortCount>
sortInput()
{
    std::array<std::uint32_t, kSortCount> a{};
    std::uint32_t x = 0x2a2a2a2a;
    for (auto &v : a) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        v = x & 0xfff;
    }
    return a;
}

std::uint32_t
foldChecksum(const std::uint32_t *a, unsigned n)
{
    std::uint32_t chk = 0;
    for (unsigned i = 0; i < n; ++i)
        chk = (chk << 5) - chk + a[i]; // chk = chk*31 + a[i]
    return chk;
}

std::uint32_t
refQsort()
{
    auto a = sortInput();
    // Lomuto partition quicksort, identical to the assembly versions.
    struct Rec
    {
        static void
        sort(std::uint32_t *arr, int lo, int hi)
        {
            if (lo >= hi)
                return;
            const std::uint32_t pivot = arr[hi];
            int i = lo;
            for (int j = lo; j < hi; ++j) {
                if (arr[j] < pivot) {
                    std::swap(arr[i], arr[j]);
                    ++i;
                }
            }
            std::swap(arr[i], arr[hi]);
            sort(arr, lo, i - 1);
            sort(arr, i + 1, hi);
        }
    };
    Rec::sort(a.data(), 0, kSortCount - 1);
    return foldChecksum(a.data(), kSortCount);
}

std::uint32_t
refSieve()
{
    std::array<std::uint8_t, kSieveLimit> flag;
    flag.fill(1);
    std::uint32_t count = 0;
    for (unsigned p = 2; p < kSieveLimit; ++p) {
        if (!flag[p])
            continue;
        ++count;
        for (unsigned m = p + p; m < kSieveLimit; m += p)
            flag[m] = 0;
    }
    return count;
}

std::uint32_t
refPuzzle()
{
    std::array<std::uint32_t, kPuzzleWords> a{};
    for (unsigned i = 0; i < kPuzzleWords; ++i)
        a[i] = i;
    for (unsigned iter = 0; iter < kPuzzleIters; ++iter) {
        for (unsigned i = 0; i < kPuzzleWords / 2; ++i)
            std::swap(a[i], a[kPuzzleWords - 1 - i]);
        a[iter % kPuzzleWords] += iter;
    }
    return foldChecksum(a.data(), kPuzzleWords);
}

} // namespace

Workload
makeQsort()
{
    Workload w;
    w.id = "qsort_rec";
    w.name = "Quicksort(64) recursive";
    w.provenance = "paper-era benchmark (recursive qsort)";
    w.callIntensive = true;
    w.expected = refQsort();

    w.riscSource = R"(
; Recursive quicksort of 64 words (Lomuto), then a chk*31+v fold.
; qsort args are ADDRESSES: r26=lo, r27=hi (inclusive).
start:  ldi   r2, 0x2a2a2a2a  ; fill input via xorshift
        ldi   r3, arr
        ldi   r4, 64
fill:   sll   r5, r2, 13
        xor   r2, r2, r5
        srl   r5, r2, 17
        xor   r2, r2, r5
        sll   r5, r2, 5
        xor   r2, r2, r5
        and   r6, r2, 0xfff
        stl   r6, (r3)
        add   r3, r3, 4
        dec   r4
        cmp   r4, 0
        bne   fill
        nop
        ldi   r10, arr        ; qsort(&arr[0], &arr[63])
        ldi   r11, arr + 252
        call  qsort
        nop
        ldi   r2, arr         ; checksum
        ldi   r3, 64
        clr   r1
chk:    sll   r4, r1, 5
        sub   r1, r4, r1      ; chk = chk*31
        ldl   r4, (r2)
        add   r1, r1, r4
        add   r2, r2, 4
        dec   r3
        cmp   r3, 0
        bne   chk
        nop
        halt

qsort:  cmp   r26, r27
        bge   qdone           ; lo >= hi
        nop
        ldl   r16, (r27)      ; pivot = *hi
        mov   r17, r26        ; i = lo
        mov   r18, r26        ; j = lo
qloop:  cmp   r18, r27
        beq   qpart
        nop
        ldl   r19, (r18)
        cmp   r19, r16
        bge   qnoswap
        nop
        ldl   r20, (r17)      ; swap *i, *j
        stl   r19, (r17)
        stl   r20, (r18)
        add   r17, r17, 4
qnoswap:
        bra   qloop
        add   r18, r18, 4     ; delay slot advances j
qpart:  ldl   r19, (r17)      ; swap *i, *hi
        ldl   r20, (r27)
        stl   r20, (r17)
        stl   r19, (r27)
        mov   r10, r26        ; qsort(lo, i-4)
        sub   r11, r17, 4
        call  qsort
        nop
        add   r10, r17, 4     ; qsort(i+4, hi)
        mov   r11, r27
        call  qsort
        nop
qdone:  ret
        nop
        .align 4
arr:    .space 256
)";

    w.vaxSource = R"(
; Recursive quicksort on the CISC baseline; args are addresses on the
; stack: 4(ap)=lo, 8(ap)=hi.
start:  movl  #0x2a2a2a2a, r1
        moval arr, r2
        movl  #64, r3
fill:   ashl  #13, r1, r4
        xorl2 r4, r1
        ashl  #-17, r1, r4
        bicl2 #0xffff8000, r4 ; ashl is arithmetic; force logical >>17
        xorl2 r4, r1
        ashl  #5, r1, r4
        xorl2 r4, r1
        movl  r1, r5
        bicl2 #0xfffff000, r5 ; keep low 12 bits
        movl  r5, (r2)+
        sobgtr r3, fill
        pushl #arr + 252      ; hi
        pushl #arr            ; lo
        calls #2, qsort
        moval arr, r2         ; checksum
        movl  #64, r3
        clrl  r0
chk:    ashl  #5, r0, r4
        subl3 r0, r4, r0      ; chk = chk*31
        addl2 (r2)+, r0
        sobgtr r3, chk
        halt

qsort:  .mask 0x007c          ; save r2-r6
        movl  4(ap), r2       ; lo
        movl  8(ap), r3       ; hi
        cmpl  r2, r3
        bgequ qdone
        movl  (r3), r4        ; pivot
        movl  r2, r5          ; i = lo
        movl  r2, r6          ; j = lo
qloop:  cmpl  r6, r3
        beql  qpart
        cmpl  (r6), r4
        bgequ qnoswap
        movl  (r5), r0        ; swap *i, *j
        movl  (r6), r1
        movl  r1, (r5)
        movl  r0, (r6)
        addl2 #4, r5
qnoswap:
        addl2 #4, r6
        brb   qloop
qpart:  movl  (r5), r0        ; swap *i, *hi
        movl  (r3), r1
        movl  r1, (r5)
        movl  r0, (r3)
        subl3 #4, r5, r0      ; qsort(lo, i-4)
        pushl r0
        pushl r2
        calls #2, qsort
        pushl r3              ; qsort(i+4, hi)
        addl3 #4, r5, r0
        pushl r0
        calls #2, qsort
qdone:  ret
        .align 4
arr:    .space 256
)";
    return w;
}

Workload
makeSieve()
{
    Workload w;
    w.id = "sieve";
    w.name = "Sieve of Eratosthenes(1000)";
    w.provenance = "paper-era benchmark (sieve)";
    w.callIntensive = false;
    w.expected = refSieve();

    w.riscSource = R"(
; Sieve of Eratosthenes: count primes below 1000.
start:  ldi   r2, flags       ; init flags[0..999] = 1
        ldi   r3, 1000
        ldi   r4, 1
init:   stb   r4, (r2)
        inc   r2
        dec   r3
        cmp   r3, 0
        bne   init
        nop
        clr   r1              ; prime count
        ldi   r5, 2           ; p
ploop:  ldi   r2, flags
        add   r2, r2, r5
        ldbu  r4, (r2)
        cmp   r4, 0
        beq   pnext
        nop
        inc   r1              ; p is prime
        add   r6, r5, r5      ; m = 2p
mloop:  cmp   r6, 1000
        bge   pnext
        nop
        ldi   r2, flags
        add   r2, r2, r6
        stb   r0, (r2)        ; flags[m] = 0
        bra   mloop
        add   r6, r6, r5      ; delay slot: m += p
pnext:  inc   r5
        cmp   r5, 1000
        bne   ploop
        nop
        halt
flags:  .space 1000
)";

    w.vaxSource = R"(
; Sieve of Eratosthenes on the CISC baseline.
start:  moval flags, r1       ; init flags = 1
        movl  #1000, r2
init:   movb  #1, (r1)+
        sobgtr r2, init
        clrl  r0              ; prime count
        movl  #2, r3          ; p
ploop:  movzbl flags(r3), r4  ; indexed byte load via displacement
        tstl  r4
        beql  pnext
        incl  r0
        addl3 r3, r3, r5      ; m = 2p
mloop:  cmpl  r5, #1000
        bgeq  pnext
        clrl  r6
        movb  r6, flags(r5)
        addl2 r3, r5
        brb   mloop
pnext:  incl  r3
        cmpl  r3, #1000
        bneq  ploop
        halt
flags:  .space 1000
)";
    return w;
}

Workload
makePuzzle()
{
    Workload w;
    w.id = "puzzle_like";
    w.name = "Puzzle (array permutation)";
    w.provenance = "loop/subscript-dominated contrast workload";
    w.callIntensive = false;
    w.expected = refPuzzle();

    w.riscSource = R"(
; Subscript-heavy kernel: 40 iterations of reverse-and-perturb over a
; 64-word array, then a chk*31+v fold.
start:  ldi   r2, arr         ; a[i] = i
        clr   r3
ifill:  stl   r3, (r2)
        add   r2, r2, 4
        inc   r3
        cmp   r3, 64
        bne   ifill
        nop
        clr   r4              ; iter
iter:   ldi   r2, arr         ; reverse halves
        ldi   r3, arr + 252
rev:    ldl   r5, (r2)
        ldl   r6, (r3)
        stl   r6, (r2)
        stl   r5, (r3)
        add   r2, r2, 4
        sub   r3, r3, 4
        cmp   r2, r3
        blt   rev
        nop
        and   r5, r4, 63      ; a[iter % 64] += iter
        sll   r5, r5, 2
        ldi   r6, arr
        add   r6, r6, r5
        ldl   r7, (r6)
        add   r7, r7, r4
        stl   r7, (r6)
        inc   r4
        cmp   r4, 40
        bne   iter
        nop
        ldi   r2, arr         ; checksum
        ldi   r3, 64
        clr   r1
chk:    sll   r5, r1, 5
        sub   r1, r5, r1
        ldl   r5, (r2)
        add   r1, r1, r5
        add   r2, r2, 4
        dec   r3
        cmp   r3, 0
        bne   chk
        nop
        halt
        .align 4
arr:    .space 256
)";

    w.vaxSource = R"(
; Subscript-heavy kernel on the CISC baseline.
start:  moval arr, r1         ; a[i] = i
        clrl  r2
ifill:  movl  r2, (r1)+
        aoblss #64, r2, ifill
        clrl  r3              ; iter
iter:   moval arr, r1         ; reverse halves
        moval arr + 252, r2
rev:    movl  (r1), r4
        movl  (r2), r5
        movl  r5, (r1)
        movl  r4, (r2)
        addl2 #4, r1
        subl2 #4, r2
        cmpl  r1, r2
        blssu rev
        movl  r3, r4          ; a[iter % 64] += iter
        bicl2 #0xffffffc0, r4
        ashl  #2, r4, r4
        addl2 #arr, r4
        addl2 r3, (r4)        ; read-modify-write memory operand
        incl  r3
        cmpl  r3, #40
        bneq  iter
        moval arr, r1         ; checksum
        movl  #64, r2
        clrl  r0
chk:    ashl  #5, r0, r4
        subl3 r0, r4, r0
        addl2 (r1)+, r0
        sobgtr r2, chk
        halt
        .align 4
arr:    .space 256
)";
    return w;
}


Workload
makePuzzleSubscript()
{
    // The paper's benchmark set famously distinguishes a "subscript"
    // and a "pointer" version of the Puzzle program.  This is the
    // subscript-style twin of makePuzzle(): the identical algorithm
    // (and therefore the identical reference checksum), but every
    // array access recomputes base + 4*i instead of walking pointers.
    Workload w;
    w.id = "puzzle_sub";
    w.name = "Puzzle (subscript style)";
    w.provenance = "paper benchmark pair: puzzle(subscript) vs "
                   "puzzle(pointer)";
    w.callIntensive = false;
    w.expected = refPuzzle();

    w.riscSource = R"(
; Subscript-style puzzle kernel: every access computes base + 4*i.
start:  ldi   r2, arr         ; base register, never clobbered
        clr   r3
ifill:  sll   r4, r3, 2
        add   r4, r4, r2
        stl   r3, (r4)
        inc   r3
        cmp   r3, 64
        bne   ifill
        nop
        clr   r5              ; iter
iter:   clr   r6              ; i
rev:    sll   r7, r6, 2
        add   r7, r7, r2      ; &a[i]
        subr  r8, r6, 63      ; 63 - i
        sll   r8, r8, 2
        add   r8, r8, r2      ; &a[63-i]
        ldl   r9, (r7)
        ldl   r16, (r8)
        stl   r16, (r7)
        stl   r9, (r8)
        inc   r6
        cmp   r6, 32
        bne   rev
        nop
        and   r7, r5, 63      ; a[iter % 64] += iter
        sll   r7, r7, 2
        add   r7, r7, r2
        ldl   r8, (r7)
        add   r8, r8, r5
        stl   r8, (r7)
        inc   r5
        cmp   r5, 40
        bne   iter
        nop
        clr   r1              ; checksum, subscript style
        clr   r3
chk:    sll   r4, r1, 5
        sub   r1, r4, r1
        sll   r4, r3, 2
        add   r4, r4, r2
        ldl   r4, (r4)
        add   r1, r1, r4
        inc   r3
        cmp   r3, 64
        bne   chk
        nop
        halt
        .align 4
arr:    .space 256
)";

    w.vaxSource = R"(
; Subscript-style puzzle on the CISC baseline: displacement mode
; arr(rN) with a scaled index in rN.
start:  clrl  r1              ; i
ifill:  ashl  #2, r1, r2
        movl  r1, arr(r2)
        aoblss #64, r1, ifill
        clrl  r3              ; iter
iter:   clrl  r4              ; i
rev:    ashl  #2, r4, r5
        subl3 r4, #63, r6     ; 63 - i
        ashl  #2, r6, r6
        movl  arr(r5), r7
        movl  arr(r6), r8
        movl  r8, arr(r5)
        movl  r7, arr(r6)
        aoblss #32, r4, rev
        movl  r3, r5          ; a[iter % 64] += iter
        bicl2 #0xffffffc0, r5
        ashl  #2, r5, r5
        addl2 r3, arr(r5)
        incl  r3
        cmpl  r3, #40
        bneq  iter
        clrl  r0              ; checksum
        clrl  r1
chk:    ashl  #5, r0, r2
        subl3 r0, r2, r0
        ashl  #2, r1, r2
        addl2 arr(r2), r0
        aoblss #64, r1, chk
        halt
        .align 4
arr:    .space 256
)";
    return w;
}

} // namespace risc1
