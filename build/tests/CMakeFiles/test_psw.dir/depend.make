# Empty dependencies file for test_psw.
# This may be replaced when dependencies are built.
