#include "isa/disasm.hh"

#include <sstream>

#include "common/logging.hh"

namespace risc1 {

namespace {

std::string
reg(unsigned r)
{
    return "r" + std::to_string(r);
}

std::string
s2Text(const Instruction &inst)
{
    if (inst.imm)
        return std::to_string(inst.simm13);
    return reg(inst.rs2);
}

/** Address operand: "off(rN)" for immediates, "rN, rM" for indexed. */
std::string
addrText(const Instruction &inst)
{
    if (inst.imm)
        return std::to_string(inst.simm13) + '(' + reg(inst.rs1) + ')';
    return reg(inst.rs1) + ", " + reg(inst.rs2);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    const OpcodeInfo *info = opcodeInfo(inst.op);
    if (!info)
        return "<illegal>";

    std::ostringstream os;
    os << info->mnemonic;
    if (inst.scc && info->maySetCc)
        os << 's';

    switch (info->cls) {
      case InstClass::Alu:
        if (inst.op == Opcode::Ldhi) {
            os << ' ' << reg(inst.rd) << ", " << inst.imm19;
        } else {
            os << ' ' << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << s2Text(inst);
        }
        break;
      case InstClass::Load:
      case InstClass::Store:
        os << ' ' << reg(inst.rd) << ", " << addrText(inst);
        break;
      case InstClass::Jump:
        if (inst.op == Opcode::Jmpr)
            os << ' ' << condName(inst.cond()) << ", " << inst.imm19;
        else
            os << ' ' << condName(inst.cond()) << ", " << addrText(inst);
        break;
      case InstClass::CallRet:
        if (inst.op == Opcode::Callr)
            os << ' ' << reg(inst.rd) << ", " << inst.imm19;
        else if (inst.op == Opcode::Ret || inst.op == Opcode::Reti)
            os << ' ' << reg(inst.rs1) << ", " << s2Text(inst);
        else if (inst.op == Opcode::Calli)
            os << ' ' << reg(inst.rd);
        else
            os << ' ' << reg(inst.rd) << ", " << addrText(inst);
        break;
      case InstClass::Special:
        if (inst.op == Opcode::Putpsw)
            os << ' ' << reg(inst.rs1);
        else
            os << ' ' << reg(inst.rd);
        break;
    }
    return os.str();
}

std::string
disassembleWord(std::uint32_t word)
{
    if (!Instruction::isLegal(word))
        return "<illegal>";
    return disassemble(Instruction::decode(word));
}

} // namespace risc1
