file(REMOVE_RECURSE
  "CMakeFiles/table_execution_time.dir/table_execution_time.cc.o"
  "CMakeFiles/table_execution_time.dir/table_execution_time.cc.o.d"
  "table_execution_time"
  "table_execution_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_execution_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
