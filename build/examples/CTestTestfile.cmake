# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(riscsim_sum "/root/repo/build/examples/riscsim" "/root/repo/examples/programs/sum.s")
set_tests_properties(riscsim_sum PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_fib "/root/repo/build/examples/riscsim" "/root/repo/examples/programs/fib.s")
set_tests_properties(riscsim_fib PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_cisc "/root/repo/build/examples/riscsim" "--cisc" "/root/repo/examples/programs/hello_cisc.s")
set_tests_properties(riscsim_cisc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_disasm "/root/repo/build/examples/riscsim" "--disasm" "/root/repo/examples/programs/sum.s")
set_tests_properties(riscsim_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_walkthrough "/root/repo/build/examples/window_walkthrough" "8" "4")
set_tests_properties(example_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare "/root/repo/build/examples/cross_isa_compare" "hanoi")
set_tests_properties(example_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_isa_reference "/root/repo/build/examples/isa_reference")
set_tests_properties(example_isa_reference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_reorganize "/root/repo/build/examples/riscsim" "--reorganize" "/root/repo/examples/programs/sum.s")
set_tests_properties(riscsim_reorganize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_nowindows "/root/repo/build/examples/riscsim" "--no-windows" "/root/repo/examples/programs/fib.s")
set_tests_properties(riscsim_nowindows PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(riscsim_cisc_disasm "/root/repo/build/examples/riscsim" "--cisc" "--disasm" "/root/repo/examples/programs/hello_cisc.s")
set_tests_properties(riscsim_cisc_disasm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
