file(REMOVE_RECURSE
  "CMakeFiles/test_condition.dir/test_condition.cc.o"
  "CMakeFiles/test_condition.dir/test_condition.cc.o.d"
  "test_condition"
  "test_condition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
