#include "asm/parser.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace risc1 {

Expr
Expr::constant(std::int64_t value)
{
    Expr e;
    Term t;
    t.number = value;
    e.terms.push_back(t);
    return e;
}

bool
Expr::resolvable(const std::map<std::string, std::uint32_t> &symbols) const
{
    for (const auto &t : terms)
        if (t.isSymbol && !symbols.contains(t.symbol))
            return false;
    return true;
}

std::int64_t
Expr::eval(const std::map<std::string, std::uint32_t> &symbols,
           std::uint32_t dot) const
{
    std::int64_t value = 0;
    for (const auto &t : terms) {
        std::int64_t term;
        if (t.isDot) {
            term = dot;
        } else if (t.isSymbol) {
            const auto it = symbols.find(t.symbol);
            if (it == symbols.end())
                fatal(cat("undefined symbol '", t.symbol, "'"));
            term = it->second;
        } else {
            term = t.number;
        }
        value += t.sign * term;
    }
    return value;
}

std::optional<std::string>
Expr::asBareSymbol() const
{
    if (terms.size() == 1 && terms[0].isSymbol && terms[0].sign == 1)
        return terms[0].symbol;
    return std::nullopt;
}

Token
TokenCursor::expect(TokKind kind, const char *what)
{
    if (peek().kind != kind)
        fatal(cat("line ", peek().line, ": expected ", what, ", got '",
                  peek().text, "'"));
    return get();
}

bool
TokenCursor::accept(TokKind kind)
{
    if (peek().kind == kind) {
        get();
        return true;
    }
    return false;
}

bool
TokenCursor::skipNewlines()
{
    while (peek().kind == TokKind::Newline)
        get();
    return !atEnd();
}

Expr
TokenCursor::parseExpr()
{
    Expr expr;
    int sign = 1;
    bool first = true;
    for (;;) {
        // Optional leading signs (also between terms).
        while (peek().kind == TokKind::Minus ||
               peek().kind == TokKind::Plus) {
            if (get().kind == TokKind::Minus)
                sign = -sign;
        }
        Expr::Term term;
        term.sign = sign;
        const Token &tok = peek();
        if (tok.kind == TokKind::Number) {
            term.number = get().value;
        } else if (tok.kind == TokKind::Ident) {
            if (tok.text == ".") {
                term.isDot = true;
            } else {
                term.isSymbol = true;
                term.symbol = tok.text;
            }
            get();
        } else {
            if (first)
                fatal(cat("line ", tok.line,
                          ": expected expression, got '", tok.text, "'"));
            fatal(cat("line ", tok.line,
                      ": expected expression term after sign"));
        }
        expr.terms.push_back(std::move(term));
        first = false;

        if (peek().kind == TokKind::Plus ||
            peek().kind == TokKind::Minus) {
            sign = 1;
            continue;
        }
        break;
    }
    return expr;
}

std::optional<unsigned>
parseRegName(const std::string &name)
{
    if (name.size() < 2 || name.size() > 3 ||
        (name[0] != 'r' && name[0] != 'R'))
        return std::nullopt;
    unsigned value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i])))
            return std::nullopt;
        value = value * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (value > 31)
        return std::nullopt;
    if (name.size() == 3 && name[1] == '0')
        return std::nullopt; // reject "r01"
    return value;
}

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

/** Parse one operand: register, expr(reg), (reg), string, or expr. */
Operand
parseOperand(TokenCursor &cur)
{
    Operand op;
    const Token &tok = cur.peek();

    if (tok.kind == TokKind::Str) {
        op.kind = OperandKind::Str;
        op.str = cur.get().text;
        return op;
    }
    if (tok.kind == TokKind::Ident) {
        if (auto reg = parseRegName(tok.text)) {
            cur.get();
            op.kind = OperandKind::Reg;
            op.reg = *reg;
            return op;
        }
    }
    if (tok.kind == TokKind::LParen) {
        // "(rN)" with implicit zero displacement.
        cur.get();
        const Token regTok = cur.expect(TokKind::Ident, "register");
        const auto reg = parseRegName(regTok.text);
        if (!reg)
            fatal(cat("line ", regTok.line, ": '", regTok.text,
                      "' is not a register"));
        cur.expect(TokKind::RParen, "')'");
        op.kind = OperandKind::Mem;
        op.reg = *reg;
        op.expr = Expr::constant(0);
        return op;
    }

    // Expression, possibly followed by "(rN)" making it a Mem operand.
    op.expr = cur.parseExpr();
    if (cur.peek().kind == TokKind::LParen) {
        cur.get();
        const Token regTok = cur.expect(TokKind::Ident, "register");
        const auto reg = parseRegName(regTok.text);
        if (!reg)
            fatal(cat("line ", regTok.line, ": '", regTok.text,
                      "' is not a register"));
        cur.expect(TokKind::RParen, "')'");
        op.kind = OperandKind::Mem;
        op.reg = *reg;
    } else {
        op.kind = OperandKind::Expr;
    }
    return op;
}

} // namespace

std::vector<Stmt>
parseRiscSource(const std::string &source)
{
    TokenCursor cur(lex(source));
    std::vector<Stmt> stmts;
    std::vector<std::string> pendingLabels;

    while (cur.skipNewlines()) {
        // Labels: ident ':' (several may stack on one address).
        while (cur.peek().kind == TokKind::Ident) {
            // Lookahead for ':' without consuming the mnemonic.
            const Token identTok = cur.peek();
            // Probe: consume ident, check for colon.
            cur.get();
            if (cur.accept(TokKind::Colon)) {
                if (parseRegName(identTok.text))
                    fatal(cat("line ", identTok.line,
                              ": register name '", identTok.text,
                              "' used as a label"));
                pendingLabels.push_back(identTok.text);
                cur.skipNewlines();
                continue;
            }
            // Not a label: it is the mnemonic of a statement.
            Stmt stmt;
            stmt.line = identTok.line;
            stmt.mnemonic = toLower(identTok.text);
            stmt.type = stmt.mnemonic[0] == '.' ? Stmt::Type::Directive
                                                : Stmt::Type::Instruction;
            stmt.labels = std::move(pendingLabels);
            pendingLabels.clear();

            if (cur.peek().kind != TokKind::Newline &&
                cur.peek().kind != TokKind::End) {
                stmt.operands.push_back(parseOperand(cur));
                while (cur.accept(TokKind::Comma))
                    stmt.operands.push_back(parseOperand(cur));
            }
            if (cur.peek().kind != TokKind::Newline &&
                cur.peek().kind != TokKind::End)
                fatal(cat("line ", stmt.line,
                          ": trailing junk after statement: '",
                          cur.peek().text, "'"));
            stmts.push_back(std::move(stmt));
            break;
        }
        if (cur.peek().kind != TokKind::Ident &&
            cur.peek().kind != TokKind::Newline && !cur.atEnd()) {
            fatal(cat("line ", cur.peek().line,
                      ": expected label or mnemonic, got '",
                      cur.peek().text, "'"));
        }
    }

    if (!pendingLabels.empty()) {
        // Labels at end of file attach to an empty marker statement.
        Stmt stmt;
        stmt.type = Stmt::Type::Directive;
        stmt.mnemonic = ".end_marker";
        stmt.labels = std::move(pendingLabels);
        stmts.push_back(std::move(stmt));
    }
    return stmts;
}

} // namespace risc1
