#include "common/logging.hh"

#include <iostream>
#include <mutex>
#include <string_view>

namespace risc1 {

namespace {
bool verboseOutput = true;

/**
 * One process-wide writer lock for status output.  warn()/inform()
 * are called from batch-engine worker threads (a faulting job, a
 * suspicious configuration), and unsynchronized stderr writes from
 * several workers interleave mid-line; composing the full line first
 * and writing it under the mutex keeps every message atomic.
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

void
writeLine(std::string_view prefix, const std::string &msg)
{
    std::string line;
    line.reserve(prefix.size() + msg.size() + 1);
    line.append(prefix).append(msg).push_back('\n');
    const std::lock_guard lock(logMutex());
    std::cerr << line;
}
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg);
}

void
warn(const std::string &msg)
{
    if (verboseOutput)
        writeLine("warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (verboseOutput)
        writeLine("info: ", msg);
}

void
setVerbose(bool verbose)
{
    verboseOutput = verbose;
}

} // namespace risc1
