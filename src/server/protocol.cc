#include "server/protocol.hh"

#include <algorithm>
#include <chrono>

#include "common/json.hh"
#include "common/json_value.hh"
#include "common/logging.hh"
#include "mem/config.hh"
#include "memory/memory.hh"
#include "target/registry.hh"
#include "workloads/workloads.hh"

namespace risc1::server {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point from)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - from)
        .count();
}

std::uint64_t
nsSince(Clock::time_point from)
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - from)
            .count());
}

/** Commands with pre-registered latency histograms; anything else
 *  (including unparsable requests) lands in "cmd.other.ns". */
constexpr const char *kCommands[] = {
    "ping", "info", "telemetry", "create", "destroy", "step", "run",
    "peek", "regs", "stats", "snapshot", "fork", "evict", "drop",
};

/** Longest request echo a slow.command event carries. */
constexpr std::size_t kSlowEchoBytes = 256;

/** Most words one `peek` may read (keeps responses frame-sized). */
constexpr std::uint64_t kMaxPeekWords = 1024;

/** Smallest session memory `create` accepts (code + stack areas). */
constexpr std::uint64_t kMinMemBytes = 64 * 1024;

constexpr std::uint64_t kDefaultRunSteps = 10'000'000;

/** @throws FatalError if @p session was destroyed after lookup. */
void
requireAlive(const Session &session)
{
    if (session.destroyed)
        fatal(cat("unknown session '", session.id, "'"));
}

/** @throws FatalError unless @p session is alive and not mid-run. */
void
requireIdle(const Session &session)
{
    requireAlive(session);
    if (session.runActive)
        fatal(cat("session ", session.id,
                  ": run in progress (mutating commands must wait for "
                  "its reply)"));
}

void
touch(Session &session)
{
    ++session.metrics.commands;
    session.lastActive = Clock::now();
}

void
okHeader(const Session &session, JsonWriter &w)
{
    w.beginObject()
        .field("ok", true)
        .field("session", session.id)
        .field("backend", session.cfg.backend);
}

} // namespace

std::string
errorPayload(std::string_view message)
{
    JsonWriter w;
    w.beginObject().field("ok", false).field("error", message).endObject();
    return w.str();
}

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      sessions_(config_.spoolDir, config_.maxSessions, &registry_,
                &eventLog_),
      engine_(config_.workers, config_.engineQueue)
{
    if (!config_.eventLogPath.empty())
        eventLog_.open(config_.eventLogPath,
                       obs::parseEventLevel(config_.eventLogLevel));

    requests_ = &registry_.counter("server.requests");
    errors_ = &registry_.counter("server.errors");
    bytesIn_ = &registry_.counter("server.bytesIn");
    bytesOut_ = &registry_.counter("server.bytesOut");
    slowCommands_ = &registry_.counter("server.slowCommands");
    schedTurns_ = &registry_.counter("sched.turns");
    schedQueueWaitNs_ = &registry_.histogram("sched.queueWait.ns");
    schedTurnNs_ = &registry_.histogram("sched.turn.ns");
    for (const char *cmd : kCommands)
        cmdHistograms_.emplace(cmd,
                               &registry_.histogram(
                                   cat("cmd.", cmd, ".ns")));
    cmdOtherNs_ = &registry_.histogram("cmd.other.ns");
    registry_.onCollect([this] { collectGauges(); });

    if (eventLog_.enabled(obs::EventLevel::Info))
        eventLog_.emit(obs::EventLevel::Info, "server.start",
                       obs::EventFields{}
                           .field("version", kServerVersion)
                           .field("workers",
                                  std::uint64_t(engine_.workers()))
                           .field("quota", config_.quota));

    sweeper_ = std::thread(&Service::sweepLoop, this);
}

std::uint64_t
Service::uptimeMs() const
{
    return std::uint64_t(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - startTime_)
            .count());
}

obs::Histogram &
Service::commandHistogram(std::string_view cmd)
{
    // The table is immutable after construction, so no lock is needed.
    const auto it = cmdHistograms_.find(std::string(cmd));
    return it != cmdHistograms_.end() ? *it->second : *cmdOtherNs_;
}

void
Service::finishCommand(std::string_view cmd, Clock::time_point t0,
                       const std::string &request,
                       const std::string &payload)
{
    const std::uint64_t ns = nsSince(t0);
    commandHistogram(cmd).record(ns);
    bytesOut_->add(payload.size());
    // errorPayload() renders a fixed prefix; cheaper than re-parsing.
    static const std::string errPrefix =
        errorPayload("x").substr(0, 14);
    if (payload.compare(0, errPrefix.size(), errPrefix) == 0)
        errors_->add(1);
    const double ms = double(ns) / 1e6;
    if (config_.slowMs > 0.0 && ms >= config_.slowMs) {
        slowCommands_->add(1);
        if (eventLog_.enabled(obs::EventLevel::Warn)) {
            const std::string_view echo =
                std::string_view(request).substr(0, kSlowEchoBytes);
            eventLog_.emit(obs::EventLevel::Warn, "slow.command",
                           obs::EventFields{}
                               .field("cmd", cmd)
                               .field("ms", ms)
                               .field("thresholdMs", config_.slowMs)
                               .field("truncated",
                                      request.size() > echo.size())
                               .field("request", echo));
        }
    }
}

void
Service::collectGauges()
{
    const SessionCounts c = sessions_.counts();
    registry_.gauge("sessions.alive").set(double(c.sessions));
    registry_.gauge("sessions.resident").set(double(c.resident));
    registry_.gauge("sessions.evicted").set(double(c.evicted));
    registry_.gauge("sessions.snapshots").set(double(c.snapshots));
    registry_.gauge("fleet.residentBytes").set(double(c.residentBytes));
    registry_.gauge("fleet.sharedBytes").set(double(c.sharedBytes));

    const std::size_t active = engine_.activeTasks();
    registry_.gauge("engine.queueDepth")
        .set(double(engine_.queueDepth()));
    registry_.gauge("engine.activeTasks").set(double(active));
    registry_.gauge("engine.utilization")
        .set(engine_.workers() != 0
                 ? double(active) / double(engine_.workers())
                 : 0.0);
    registry_.gauge("engine.tasksExecuted")
        .set(double(engine_.tasksExecuted()));

    std::lock_guard sched(schedMutex_);
    registry_.gauge("runs.ready").set(double(ready_.size()));
    registry_.gauge("runs.inFlight").set(double(inFlight_));
    registry_.gauge("runs.pending").set(double(pendingRuns_));
}

Service::~Service()
{
    stop();
}

void
Service::execute(const std::string &requestJson, ReplyFn reply)
{
    const auto t0 = Clock::now();
    requests_->add(1);
    bytesIn_->add(requestJson.size());

    std::string cmd;
    std::string payload;
    try {
        if (stopping_.load(std::memory_order_acquire))
            fatal("server shutting down");
        const JsonValue req = parseJson(requestJson);
        if (!req.isObject())
            fatal(cat("request must be a JSON object, got ",
                      JsonValue::kindName(req.kind())));
        cmd = req.stringOr("cmd", "");
        if (cmd.empty())
            fatal("request missing 'cmd'");

        if (cmd == "run") {
            // A run replies asynchronously from its final engine turn;
            // wrap the reply so accept-to-final-reply latency lands in
            // cmd.run.ns — the same interval the client measures.
            ReplyFn wrapped = [this, t0, requestJson,
                               inner = std::move(reply)](
                                  std::string runPayload) {
                finishCommand("run", t0, requestJson, runPayload);
                inner(std::move(runPayload));
            };
            cmdRun(req, wrapped); // owns the (possibly deferred) reply
            return;
        }
        if (cmd == "ping")
            payload = cmdPing();
        else if (cmd == "info")
            payload = cmdInfo();
        else if (cmd == "telemetry")
            payload = cmdTelemetry(req);
        else if (cmd == "create")
            payload = cmdCreate(req);
        else if (cmd == "destroy")
            payload = cmdDestroy(req);
        else if (cmd == "step")
            payload = cmdStep(req);
        else if (cmd == "peek")
            payload = cmdPeek(req);
        else if (cmd == "regs")
            payload = cmdRegs(req);
        else if (cmd == "stats")
            payload = cmdStats(req);
        else if (cmd == "snapshot")
            payload = cmdSnapshot(req);
        else if (cmd == "fork")
            payload = cmdFork(req);
        else if (cmd == "evict")
            payload = cmdEvict(req);
        else if (cmd == "drop")
            payload = cmdDrop(req);
        else
            fatal(cat("unknown command '", cmd, "'"));
    } catch (const std::exception &e) {
        payload = errorPayload(e.what());
    }
    finishCommand(cmd, t0, requestJson, payload);
    reply(std::move(payload));
}

std::string
Service::cmdPing() const
{
    JsonWriter w;
    w.beginObject().field("ok", true).field("server", "riscserved")
        .endObject();
    return w.str();
}

std::string
Service::cmdInfo()
{
    const SessionCounts c = sessions_.counts();
    std::size_t ready = 0;
    std::size_t inFlight = 0;
    std::size_t pending = 0;
    {
        std::lock_guard sched(schedMutex_);
        ready = ready_.size();
        inFlight = inFlight_;
        pending = pendingRuns_;
    }
    JsonWriter w;
    w.beginObject()
        .field("ok", true)
        .field("server", kServerName)
        .field("protocolVersion", std::uint64_t(1))
        .field("uptimeMs", uptimeMs())
        .field("workers", std::uint64_t(engine_.workers()))
        .field("queueDepth", std::uint64_t(engine_.queueDepth()))
        .field("queueCapacity", std::uint64_t(engine_.capacity()))
        .field("quota", config_.quota)
        .field("ttlMs", std::int64_t(config_.ttlMs))
        .field("maxSessions", std::uint64_t(config_.maxSessions));
    w.key("sessions")
        .beginObject()
        .field("alive", std::uint64_t(c.sessions))
        .field("resident", std::uint64_t(c.resident))
        .field("evicted", std::uint64_t(c.evicted))
        .field("created", c.created)
        .field("destroyed", c.destroyed)
        .field("evictions", c.evictions)
        .field("restores", c.restores)
        .field("snapshots", std::uint64_t(c.snapshots))
        // Copy-on-write accounting summed over the resident sessions
        // (docs/MEMORY.md): residentBytes is the private page deltas,
        // sharedBytes the pages aliased with snapshots and forks.
        // riscload asserts forked fleets keep residentBytes flat.
        .field("residentBytes", c.residentBytes)
        .field("sharedBytes", c.sharedBytes)
        .endObject();
    w.key("runs")
        .beginObject()
        .field("pending", std::uint64_t(pending))
        .field("ready", std::uint64_t(ready))
        .field("inFlight", std::uint64_t(inFlight))
        .endObject();
    // Lifetime command totals (the registry's server.* counters) and
    // build identity, so one `info` answers "what is this daemon and
    // how much has it served".
    w.key("commands")
        .beginObject()
        .field("total", requests_->value())
        .field("errors", errors_->value())
        .field("bytesIn", bytesIn_->value())
        .field("bytesOut", bytesOut_->value())
        .endObject();
    w.key("build")
        .beginObject()
        .field("name", kServerName)
        .field("version", kServerVersion)
        .field("compiler", __VERSION__)
        .endObject();
    w.endObject();
    return w.str();
}

std::string
Service::cmdTelemetry(const JsonValue &req)
{
    const std::string format = req.stringOr("format", "json");
    if (format == "prometheus") {
        JsonWriter w;
        w.beginObject()
            .field("ok", true)
            .field("format", "prometheus")
            .field("exposition", registry_.prometheus())
            .endObject();
        return w.str();
    }
    if (format != "json")
        fatal(cat("telemetry: unknown format '", format,
                  "' (expected json or prometheus)"));
    JsonWriter w;
    w.beginObject().field("ok", true).field("uptimeMs", uptimeMs());
    w.key("telemetry");
    registry_.writeJson(w);
    w.endObject();
    return w.str();
}

std::string
Service::cmdCreate(const JsonValue &req)
{
    SessionConfig cfg;
    cfg.backend = std::string(
        target::canonicalBackend(req.stringOr("backend", "risc")));
    cfg.fast = req.boolOr("fast", true);

    const std::uint64_t mem = req.u64Or("mem", config_.defaultMemBytes);
    if (mem < kMinMemBytes || mem > config_.maxMemBytes)
        fatal(cat("create: mem must be ", kMinMemBytes, "..",
                  config_.maxMemBytes, " bytes, got ", mem));
    if (mem % Memory::pageBytes != 0)
        fatal(cat("create: mem must be a multiple of ", Memory::pageBytes,
                  " bytes, got ", mem));

    // Scale the fixed memory-map anchors with the session's memory the
    // same way the 16 MiB defaults sit in a 16 MiB machine: the
    // register-save area occupies the top 1/16th, the soft frame area
    // the 1/16th below it, and the baseline's stack grows down from
    // the save-area floor.
    auto &risc = cfg.options.risc;
    auto &vax = cfg.options.vax;
    risc.memorySize = static_cast<std::uint32_t>(mem);
    risc.saveAreaTop = static_cast<std::uint32_t>(mem - mem / 16);
    risc.softAreaTop = static_cast<std::uint32_t>(mem - mem / 8);
    vax.memorySize = static_cast<std::uint32_t>(mem);
    vax.stackTop = static_cast<std::uint32_t>(mem - mem / 16);

    if (const JsonValue *windows = req.find("windows"))
        risc.windows.numWindows = static_cast<unsigned>(windows->asU64());
    risc.windowedCalls = req.boolOr("windowed", true);

    const auto cacheLevel =
        [&req](const char *key) -> std::optional<mem::LevelConfig> {
        const JsonValue *spec = req.find(key);
        if (!spec)
            return std::nullopt;
        return mem::parseLevelSpec(spec->asString(),
                                   cat("create: '", key, "'"));
    };
    // Hierarchy levels apply to whichever backend the session runs
    // (same convention as job files, sim/jobfile.cc).
    if (const auto l1i = cacheLevel("l1i"))
        risc.caches.l1i = vax.caches.l1i = *l1i;
    if (const auto l1d = cacheLevel("l1d"))
        risc.caches.l1d = vax.caches.l1d = *l1d;
    if (const auto l2 = cacheLevel("l2"))
        risc.caches.l2 = vax.caches.l2 = *l2;

    const std::string workloadId = req.stringOr("workload", "");
    const std::string source = req.stringOr("source", "");
    if (workloadId.empty() == source.empty())
        fatal("create needs exactly one of 'workload' or 'source'");
    const std::string &text =
        workloadId.empty()
            ? source
            : target::workloadSource(cfg.backend,
                                     findWorkload(workloadId));

    // Build and load the machine before registering the session so a
    // failed create leaves no session behind.
    auto target = target::makeTarget(cfg.backend, cfg.options);
    target->load(text);

    const auto session = sessions_.create(std::move(cfg));
    std::uint64_t codeBytes = 0;
    {
        std::lock_guard lock(session->mutex);
        session->target = std::move(target);
        codeBytes = session->target->codeBytes();
        touch(*session);
    }
    JsonWriter w;
    okHeader(*session, w);
    w.field("memBytes", mem).field("codeBytes", codeBytes).endObject();
    return w.str();
}

std::string
Service::cmdDestroy(const JsonValue &req)
{
    const auto session = needSession(req);
    std::lock_guard lock(session->mutex);
    requireIdle(*session);
    sessions_.destroy(*session);
    JsonWriter w;
    w.beginObject().field("ok", true).field("session", session->id)
        .endObject();
    return w.str();
}

std::string
Service::cmdStep(const JsonValue &req)
{
    const auto session = needSession(req);
    const std::uint64_t count = req.u64Or("count", 1);
    if (count < 1 || count > config_.maxStepCount)
        fatal(cat("step: count must be 1..", config_.maxStepCount,
                  ", got ", count));

    std::lock_guard lock(session->mutex);
    requireIdle(*session);
    sessions_.ensureResident(*session);
    const auto t0 = Clock::now();
    std::uint64_t done = 0;
    while (done < count && !session->target->halted()) {
        session->target->step();
        ++done;
    }
    session->metrics.execMs += msSince(t0);
    session->metrics.steps += done;
    touch(*session);

    JsonWriter w;
    okHeader(*session, w);
    w.field("steps", done)
        .field("halted", session->target->halted())
        .field("pc", session->target->pc())
        .endObject();
    return w.str();
}

void
Service::cmdRun(const JsonValue &req, ReplyFn &reply)
{
    std::shared_ptr<Session> session;
    try {
        session = needSession(req);
        const std::uint64_t maxSteps =
            req.u64Or("maxSteps", kDefaultRunSteps);
        if (maxSteps < 1 || maxSteps > config_.maxRunSteps)
            fatal(cat("run: maxSteps must be 1..", config_.maxRunSteps,
                      ", got ", maxSteps));

        std::lock_guard lock(session->mutex);
        requireIdle(*session);
        {
            std::lock_guard sched(schedMutex_);
            if (stopping_.load(std::memory_order_relaxed))
                fatal("server shutting down");
            if (config_.maxPendingRuns != 0 &&
                pendingRuns_ >= config_.maxPendingRuns)
                fatal(cat("server overloaded: ", pendingRuns_,
                          " runs pending (limit ", config_.maxPendingRuns,
                          "); retry after a run completes"));
            ++pendingRuns_;
        }
        touch(*session);
        session->runActive = true;
        session->run.remaining = maxSteps;
        session->run.executed = 0;
        session->run.reply = std::move(reply);
        session->run.enqueuedAt = Clock::now();
    } catch (const std::exception &e) {
        reply(errorPayload(e.what()));
        return;
    }
    {
        std::lock_guard sched(schedMutex_);
        ready_.push_back(std::move(session));
    }
    pump();
}

std::string
Service::cmdPeek(const JsonValue &req)
{
    const auto session = needSession(req);
    const JsonValue *addrValue = req.find("addr");
    if (!addrValue)
        fatal("peek: request missing 'addr'");
    const std::uint64_t addr = addrValue->asU64();
    const std::uint64_t count = req.u64Or("count", 1);
    if (count < 1 || count > kMaxPeekWords)
        fatal(cat("peek: count must be 1..", kMaxPeekWords, ", got ",
                  count));
    if (addr > 0xffffffffu || addr + count * 4 - 1 > 0xffffffffu)
        fatal(cat("peek: address range out of 32-bit space"));

    std::lock_guard lock(session->mutex);
    requireAlive(*session);
    sessions_.ensureResident(*session);
    touch(*session);

    JsonWriter w;
    okHeader(*session, w);
    w.field("addr", addr).key("words").beginArray();
    for (std::uint64_t i = 0; i < count; ++i)
        w.value(session->target->peekWord(
            static_cast<std::uint32_t>(addr + i * 4)));
    w.endArray().endObject();
    return w.str();
}

std::string
Service::cmdRegs(const JsonValue &req)
{
    const auto session = needSession(req);
    std::lock_guard lock(session->mutex);
    requireAlive(*session);
    sessions_.ensureResident(*session);
    touch(*session);

    JsonWriter w;
    okHeader(*session, w);
    w.field("pc", session->target->pc())
        .field("halted", session->target->halted());
    w.key("regs").beginArray();
    const unsigned n = session->target->numRegs();
    for (unsigned r = 0; r < n; ++r)
        w.value(session->target->readReg(r));
    w.endArray().endObject();
    return w.str();
}

std::string
Service::cmdStats(const JsonValue &req)
{
    const auto session = needSession(req);
    std::lock_guard lock(session->mutex);
    requireAlive(*session);
    sessions_.ensureResident(*session);
    touch(*session);

    const auto stats = session->target->stats();
    JsonWriter w;
    okHeader(*session, w);
    w.field("halted", session->target->halted())
        .field("checksum", session->target->checksum());
    w.key("result").beginObject();
    stats->writeJson(w);
    w.endObject();
    // This session's own copy-on-write footprint: the pages only it
    // holds vs the pages it still shares with snapshots/forks.
    const MemoryUsage usage = session->target->memUsage();
    w.key("memory")
        .beginObject()
        .field("residentBytes", usage.residentBytes)
        .field("sharedBytes", usage.sharedBytes)
        .endObject();
    w.key("metrics");
    session->metrics.writeJson(w);
    w.endObject();
    return w.str();
}

std::string
Service::cmdSnapshot(const JsonValue &req)
{
    const auto session = needSession(req);
    std::lock_guard lock(session->mutex);
    requireIdle(*session);
    sessions_.ensureResident(*session);
    touch(*session);
    const std::string id = sessions_.storeSnapshot(
        StoredSnapshot{session->target->snapshot(), session->cfg});
    JsonWriter w;
    okHeader(*session, w);
    w.field("snapshot", id).endObject();
    return w.str();
}

std::string
Service::cmdFork(const JsonValue &req)
{
    const std::string snapId = req.stringOr("snapshot", "");
    const std::string srcId = req.stringOr("session", "");
    if (snapId.empty() == srcId.empty())
        fatal("fork needs exactly one of 'session' or 'snapshot'");

    std::unique_ptr<target::Target> target;
    SessionConfig cfg;
    if (!snapId.empty()) {
        const auto stored = sessions_.findSnapshot(snapId);
        if (!stored)
            fatal(cat("unknown snapshot '", snapId, "'"));
        cfg = stored->cfg;
        // Restoring adopts the stored snapshot's page handles; every
        // session forked off one snapshot shares its pages until it
        // writes them (copy-on-write).
        target = target::makeTarget(cfg.backend, cfg.options);
        target->restore(*stored->snap);
    } else {
        const auto src = needSession(req);
        std::lock_guard lock(src->mutex);
        requireIdle(*src);
        sessions_.ensureResident(*src);
        touch(*src);
        // Clone the live machine directly — O(pages touched) handle
        // adoption, no content copied (Target::fork).
        target = src->target->fork();
        cfg = src->cfg;
    }

    const auto session = sessions_.create(std::move(cfg));
    {
        std::lock_guard lock(session->mutex);
        session->target = std::move(target);
        touch(*session);
    }
    JsonWriter w;
    okHeader(*session, w);
    w.endObject();
    return w.str();
}

std::string
Service::cmdEvict(const JsonValue &req)
{
    const auto session = needSession(req);
    std::lock_guard lock(session->mutex);
    requireIdle(*session);
    ++session->metrics.commands; // deliberately no lastActive touch
    sessions_.evict(*session);
    JsonWriter w;
    okHeader(*session, w);
    w.field("resident", false).endObject();
    return w.str();
}

std::string
Service::cmdDrop(const JsonValue &req)
{
    const std::string id = req.stringOr("snapshot", "");
    if (id.empty())
        fatal("drop: request missing 'snapshot'");
    if (!sessions_.dropSnapshot(id))
        fatal(cat("unknown snapshot '", id, "'"));
    JsonWriter w;
    w.beginObject().field("ok", true).field("snapshot", id).endObject();
    return w.str();
}

std::shared_ptr<Session>
Service::needSession(const JsonValue &req) const
{
    const std::string id = req.stringOr("session", "");
    if (id.empty())
        fatal("request missing 'session'");
    auto session = sessions_.find(id);
    if (!session)
        fatal(cat("unknown session '", id, "'"));
    return session;
}

void
Service::pump()
{
    std::lock_guard sched(schedMutex_);
    while (!stopping_.load(std::memory_order_relaxed) && !ready_.empty()) {
        std::shared_ptr<Session> session = ready_.front();
        if (!engine_.trySubmit(
                [this, session] { runTurn(session); }))
            break; // engine full; retried as in-flight turns retire
        ready_.pop_front();
        ++inFlight_;
    }
}

void
Service::runTurn(const std::shared_ptr<Session> &session)
{
    ReplyFn reply;
    std::string payload;
    bool requeue = false;
    {
        std::lock_guard lock(session->mutex);
        if (!session->runActive) {
            // stop() already drained this run; nothing to do.
        } else if (stopping_.load(std::memory_order_acquire)) {
            payload = errorPayload("server shutting down");
            reply = std::move(session->run.reply);
            session->runActive = false;
        } else {
            try {
                schedQueueWaitNs_->record(
                    nsSince(session->run.enqueuedAt));
                sessions_.ensureResident(*session);
                const std::uint64_t quota =
                    std::min(config_.quota, session->run.remaining);
                const auto t0 = Clock::now();
                const RunOutcome out =
                    session->target->run(quota, session->cfg.fast);
                session->metrics.execMs += msSince(t0);
                schedTurnNs_->record(nsSince(t0));
                schedTurns_->add(1);
                ++session->metrics.turns;
                session->metrics.steps += out.steps;
                session->run.executed += out.steps;
                session->run.remaining -=
                    std::min(out.steps, session->run.remaining);
                session->lastActive = Clock::now();
                if (out.halted || session->run.remaining == 0) {
                    JsonWriter w;
                    okHeader(*session, w);
                    w.field("steps", session->run.executed)
                        .field("halted", out.halted)
                        .field("status",
                               out.halted ? "halted" : "stepLimit")
                        .field("pc", session->target->pc())
                        .field("checksum", session->target->checksum())
                        .endObject();
                    payload = w.str();
                    reply = std::move(session->run.reply);
                    session->runActive = false;
                } else {
                    session->run.enqueuedAt = Clock::now();
                    requeue = true;
                }
            } catch (const std::exception &e) {
                payload = errorPayload(e.what());
                reply = std::move(session->run.reply);
                session->runActive = false;
            }
        }
    }

    if (requeue) {
        bool drained = false;
        {
            std::lock_guard sched(schedMutex_);
            if (stopping_.load(std::memory_order_relaxed))
                drained = true; // stop() already swept the ready queue
            else
                ready_.push_back(session);
        }
        if (drained) {
            std::lock_guard lock(session->mutex);
            if (session->runActive) {
                payload = errorPayload("server shutting down");
                reply = std::move(session->run.reply);
                session->runActive = false;
            }
        }
    }

    if (reply)
        reply(std::move(payload));

    {
        std::lock_guard sched(schedMutex_);
        --inFlight_;
        if (reply && pendingRuns_ > 0)
            --pendingRuns_;
    }
    pump();
}

void
Service::failRun(const std::shared_ptr<Session> &session,
                 std::string_view message)
{
    ReplyFn reply;
    {
        std::lock_guard lock(session->mutex);
        if (!session->runActive)
            return;
        reply = std::move(session->run.reply);
        session->runActive = false;
    }
    if (reply)
        reply(errorPayload(message));
    std::lock_guard sched(schedMutex_);
    if (pendingRuns_ > 0)
        --pendingRuns_;
}

void
Service::stop()
{
    std::deque<std::shared_ptr<Session>> drain;
    bool first = false;
    {
        std::lock_guard sched(schedMutex_);
        if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
            first = true;
        } else {
            // Another stop() is (or was) in flight; fall through to
            // the joins, which are themselves idempotent.
        }
        drain.swap(ready_);
    }
    if (first && eventLog_.enabled(obs::EventLevel::Info))
        eventLog_.emit(obs::EventLevel::Info, "server.stop",
                       obs::EventFields{}
                           .field("uptimeMs", uptimeMs())
                           .field("requests", requests_->value())
                           .field("errors", errors_->value()));

    // Runs still queued outside the engine never got a turn: fail them
    // here.  Runs already inside the engine are failed by their own
    // turn, which observes stopping_ (the engine runs every queued
    // task to completion before stop() returns).
    for (const auto &session : drain)
        failRun(session, "server shutting down");

    engine_.stop();

    {
        std::lock_guard lk(sweepMutex_);
        sweepStop_ = true;
    }
    sweepCv_.notify_all();
    if (sweeper_.joinable())
        sweeper_.join();
}

void
Service::sweepNow()
{
    if (config_.ttlMs < 0)
        return;
    sweepOnce();
}

void
Service::sweepLoop()
{
    using namespace std::chrono_literals;
    const auto interval = [this]() -> std::chrono::milliseconds {
        if (config_.ttlMs <= 0)
            return 25ms;
        return std::clamp(std::chrono::milliseconds(config_.ttlMs / 4),
                          std::chrono::milliseconds(25),
                          std::chrono::milliseconds(2000));
    }();

    std::unique_lock lk(sweepMutex_);
    while (!sweepStop_) {
        if (config_.ttlMs < 0) {
            sweepCv_.wait(lk, [this] { return sweepStop_; });
            break;
        }
        sweepCv_.wait_for(lk, interval, [this] { return sweepStop_; });
        if (sweepStop_)
            break;
        lk.unlock();
        sweepOnce();
        lk.lock();
    }
}

void
Service::sweepOnce()
{
    const auto ttl = std::chrono::milliseconds(config_.ttlMs);
    const auto now = Clock::now();
    for (const auto &session : sessions_.all()) {
        std::unique_lock lock(session->mutex, std::try_to_lock);
        if (!lock.owns_lock())
            continue; // busy right now; the next sweep catches it
        if (session->destroyed || session->runActive || !session->target)
            continue;
        if (now - session->lastActive < ttl)
            continue;
        try {
            sessions_.evict(*session);
        } catch (const std::exception &e) {
            warn(cat("eviction sweep: session ", session->id, ": ",
                     e.what()));
        }
    }
}

} // namespace risc1::server
