/**
 * @file
 * The riscserved command service (docs/SERVER.md) — everything above
 * the framing layer and below the sockets.
 *
 * Service owns the session table, the shared sim::Engine worker pool,
 * and the TTL eviction sweeper, and exposes exactly one entry point:
 * execute(requestJson, reply).  It is deliberately transport-free —
 * server.hh feeds it decoded frame payloads, and the lifecycle tests
 * drive it directly with strings — so every protocol behavior is
 * testable without opening a socket.
 *
 * Scheduling model.  Immediate commands (create, step, peek, regs,
 * stats, snapshot, fork, evict, destroy, info, ping) run synchronously
 * on the calling thread, serialized per-session by the session mutex.
 * A `run` command is sliced into quota-bounded turns executed on the
 * engine pool: the session joins a FIFO ready queue, each turn
 * executes at most `quota` instructions, and an unfinished run rejoins
 * the queue tail — round-robin fairness across however many sessions
 * are runnable.  Turns enter the engine through trySubmit(), so the
 * bounded engine queue applies backpressure: when it is full the
 * overflow waits in the ready queue and is pumped in as turns retire.
 *
 * Every request receives exactly one reply, including at shutdown:
 * stop() fails queued and in-flight runs with a "server shutting down"
 * error before the engine threads are joined.
 */

#ifndef RISC1_SERVER_PROTOCOL_HH
#define RISC1_SERVER_PROTOCOL_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/registry.hh"
#include "server/session.hh"
#include "sim/engine.hh"

namespace risc1 {
class JsonValue;
} // namespace risc1

namespace risc1::server {

/** Build identity reported by `info` and the event log. */
inline constexpr std::string_view kServerName = "riscserved";
inline constexpr std::string_view kServerVersion = "0.9.0";

/** Tunables for one Service instance (riscserved's flag surface). */
struct ServiceConfig
{
    /** Engine worker threads; 0 = one per hardware thread. */
    unsigned workers = 0;

    /** Engine queue bound — the backpressure knob (engine.hh). */
    std::size_t engineQueue = 256;

    /** Max instructions one scheduling turn may execute. */
    std::uint64_t quota = 100'000;

    /**
     * Idle eviction threshold: sessions untouched for this many
     * milliseconds are spooled to disk.  Negative = never evict;
     * zero = evict on the next sweep after any command completes.
     */
    std::int64_t ttlMs = -1;

    /** Directory for eviction spool files. */
    std::string spoolDir = "spool";

    std::size_t maxSessions = 4096;

    /** Session memory when `create` omits "mem" (small by design so
     *  thousands of resident sessions fit in RAM; see docs/SERVER.md). */
    std::uint64_t defaultMemBytes = 256 * 1024;

    /** Upper bound a `create` may request. */
    std::uint64_t maxMemBytes = 16u * 1024 * 1024;

    /** Per-`run` step budget cap. */
    std::uint64_t maxRunSteps = 1'000'000'000;

    /** Per-`step` command count cap. */
    std::uint64_t maxStepCount = 1'000'000;

    /** Concurrent pending `run` cap; 0 = bounded by maxSessions only
     *  (each session can have at most one run in flight). */
    std::size_t maxPendingRuns = 0;

    /** JSONL event-log path (docs/OBSERVABILITY.md); empty = no log. */
    std::string eventLogPath;

    /** Minimum level written to the event log: debug|info|warn. */
    std::string eventLogLevel = "info";

    /**
     * Commands slower than this (accept-to-reply, milliseconds) are
     * logged as `slow.command` warn events with the offending request
     * echoed.  0 = disabled.
     */
    double slowMs = 0.0;
};

/** Completion callback: receives the JSON response payload. */
using ReplyFn = std::function<void(std::string)>;

/** Build the canonical `{"ok":false,"error":...}` payload. */
std::string errorPayload(std::string_view message);

/** The transport-independent command processor (see file comment). */
class Service
{
  public:
    explicit Service(ServiceConfig config);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Execute one request (a JSON command object, docs/SERVER.md) and
     * deliver exactly one response payload through @p reply — on the
     * calling thread for immediate commands, from an engine worker for
     * `run`.  Never throws: every failure becomes an error payload.
     */
    void execute(const std::string &requestJson, ReplyFn reply);

    /**
     * Drain and shut down: pending runs receive "server shutting
     * down" errors, the sweeper and engine threads are joined.
     * Idempotent; called by the destructor.
     */
    void stop();

    /** Run one eviction sweep now (deterministic tests; no-op when
     *  ttlMs is negative). */
    void sweepNow();

    const ServiceConfig &config() const { return config_; }
    SessionManager &sessions() { return sessions_; }
    sim::Engine &engine() { return engine_; }

    /** The process-wide metrics table every layer reports through. */
    obs::Registry &registry() { return registry_; }

    /** The structured JSONL event log (no-op unless configured). */
    obs::EventLog &eventLog() { return eventLog_; }

    /** Milliseconds since this Service was constructed. */
    std::uint64_t uptimeMs() const;

  private:
    // Immediate command handlers; return the response payload.
    std::string cmdPing() const;
    std::string cmdInfo();
    std::string cmdTelemetry(const JsonValue &req);
    std::string cmdCreate(const JsonValue &req);
    std::string cmdDestroy(const JsonValue &req);
    std::string cmdStep(const JsonValue &req);
    std::string cmdPeek(const JsonValue &req);
    std::string cmdRegs(const JsonValue &req);
    std::string cmdStats(const JsonValue &req);
    std::string cmdSnapshot(const JsonValue &req);
    std::string cmdFork(const JsonValue &req);
    std::string cmdEvict(const JsonValue &req);
    std::string cmdDrop(const JsonValue &req);

    /** Accept a `run` (replies asynchronously once accepted). */
    void cmdRun(const JsonValue &req, ReplyFn &reply);

    /** Resolve the request's "session" or fail. */
    std::shared_ptr<Session> needSession(const JsonValue &req) const;

    /** Move ready sessions into the engine while it has room. */
    void pump();

    /** One scheduling turn for @p session (runs on an engine worker). */
    void runTurn(const std::shared_ptr<Session> &session);

    /** Fail @p session's pending run with @p message (session mutex
     *  must NOT be held). */
    void failRun(const std::shared_ptr<Session> &session,
                 std::string_view message);

    void sweepLoop();
    void sweepOnce();

    /** Per-command latency histogram handle ("cmd.<name>.ns"). */
    obs::Histogram &commandHistogram(std::string_view cmd);

    /**
     * Record one finished command: latency into its histogram, reply
     * size into server.bytesOut, errors into server.errors, and a
     * `slow.command` event when the --slow-ms threshold is crossed.
     */
    void finishCommand(std::string_view cmd,
                       std::chrono::steady_clock::time_point t0,
                       const std::string &request,
                       const std::string &payload);

    /** Sample queue depths, fleet memory etc. into gauges (the
     *  registry collect hook). */
    void collectGauges();

    const ServiceConfig config_;

    // Telemetry sinks are declared before sessions_ so the manager can
    // hold handles into them for its whole lifetime.
    obs::Registry registry_;
    obs::EventLog eventLog_;
    const std::chrono::steady_clock::time_point startTime_ =
        std::chrono::steady_clock::now();

    SessionManager sessions_;
    sim::Engine engine_;

    // Hot-path metric handles, resolved once at construction.
    obs::Counter *requests_ = nullptr;
    obs::Counter *errors_ = nullptr;
    obs::Counter *bytesIn_ = nullptr;
    obs::Counter *bytesOut_ = nullptr;
    obs::Counter *slowCommands_ = nullptr;
    obs::Counter *schedTurns_ = nullptr;
    obs::Histogram *schedQueueWaitNs_ = nullptr;
    obs::Histogram *schedTurnNs_ = nullptr;
    std::unordered_map<std::string, obs::Histogram *> cmdHistograms_;
    obs::Histogram *cmdOtherNs_ = nullptr;

    std::atomic<bool> stopping_{false};

    std::mutex schedMutex_;
    std::deque<std::shared_ptr<Session>> ready_;
    std::size_t inFlight_ = 0;     ///< turns inside the engine
    std::size_t pendingRuns_ = 0;  ///< accepted, not yet replied

    std::mutex sweepMutex_;
    std::condition_variable sweepCv_;
    bool sweepStop_ = false;
    std::thread sweeper_;
};

} // namespace risc1::server

#endif // RISC1_SERVER_PROTOCOL_HH
