/** Tests for the parallel batch-simulation engine (src/sim/). */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/artifact.hh"
#include "sim/engine.hh"
#include "sim/jobfile.hh"
#include "target/risc_target.hh"
#include "target/vax_target.hh"
#include "vax/vassembler.hh"
#include "workloads/workloads.hh"

namespace risc1 {
namespace {

using sim::JobStatus;
using sim::SimJob;

std::string
statsJson(const RunStats &stats)
{
    JsonWriter w;
    stats.writeJson(w);
    return w.str();
}

/** The RISC counters of a result, checked. */
const RunStats &
riscRun(const sim::SimResult &result)
{
    return target::riscStats(*result.stats).run;
}

/** A mixed job set exercising both backends and several configs. */
std::vector<SimJob>
mixedJobs()
{
    std::vector<SimJob> jobs;
    for (const char *id : {"fib_rec", "sieve", "hanoi"}) {
        const Workload &w = findWorkload(id);

        SimJob plain;
        plain.id = std::string(id) + "/risc";
        plain.source = w.riscSource;
        plain.expected = w.expected;
        jobs.push_back(std::move(plain));

        SimJob gold;
        gold.id = std::string(id) + "/gold";
        gold.source = w.riscSource;
        gold.config.risc.windows = WindowConfig::gold();
        gold.expected = w.expected;
        jobs.push_back(std::move(gold));

        SimJob cached;
        cached.id = std::string(id) + "/icache";
        cached.source = w.riscSource;
        cached.config.risc.icache = CacheConfig{256, 16, 4};
        cached.expected = w.expected;
        jobs.push_back(std::move(cached));

        SimJob vax;
        vax.id = std::string(id) + "/cisc";
        vax.backend = "vax";
        vax.source = w.vaxSource;
        vax.expected = w.expected;
        jobs.push_back(std::move(vax));
    }
    return jobs;
}

TEST(SimEngine, ResultsAreInsertionOrdered)
{
    const auto jobs = mixedJobs();
    const auto results = sim::runBatch(jobs, {4});
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].id, jobs[i].id);
        EXPECT_EQ(results[i].status, JobStatus::Ok) << results[i].error;
    }
}

TEST(SimEngine, DeterministicAcrossWorkerCounts)
{
    // The engine's core contract (and the reason the ported benches
    // can trust it): worker count must not leak into the results.
    const auto jobs = mixedJobs();
    const auto one = sim::runBatch(jobs, {1});
    const auto four = sim::runBatch(jobs, {4});
    const auto seven = sim::runBatch(jobs, {7});
    EXPECT_EQ(sim::resultSetToJson("t", one),
              sim::resultSetToJson("t", four));
    EXPECT_EQ(sim::resultSetToJson("t", one),
              sim::resultSetToJson("t", seven));
}

TEST(SimEngine, MatchesDirectWorkloadRun)
{
    const Workload &w = findWorkload("fib_rec");
    const RiscRun direct = runRiscWorkload(w);

    SimJob job;
    job.id = "fib";
    job.source = w.riscSource;
    job.expected = w.expected;
    const auto results = sim::runBatch({job}, {2});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Ok) << results[0].error;
    EXPECT_EQ(statsJson(riscRun(results[0])), statsJson(direct.stats));
    EXPECT_EQ(results[0].checksum, w.expected);
    EXPECT_EQ(results[0].codeBytes, direct.codeBytes);
}

TEST(SimEngine, PerJobFailuresDoNotPoisonTheBatch)
{
    std::vector<SimJob> jobs(3);

    jobs[0].id = "bad-assembly";
    jobs[0].source = "this is not assembly !!!";

    jobs[1].id = "runaway";
    jobs[1].source = R"(
start:  clr   r1
loop:   inc   r1
        bra   loop
        nop
        halt
)";
    jobs[1].maxSteps = 100;

    const Workload &w = findWorkload("sieve");
    jobs[2].id = "good";
    jobs[2].source = w.riscSource;
    jobs[2].expected = w.expected;

    const auto results = sim::runBatch(jobs, {3});
    ASSERT_EQ(results.size(), 3u);

    EXPECT_EQ(results[0].status, JobStatus::Error);
    EXPECT_FALSE(results[0].error.empty());
    // A failed job still carries its backend's (all-zero) stats so the
    // artifact schema never loses blocks.
    ASSERT_TRUE(results[0].stats);
    EXPECT_EQ(results[0].stats->instructions(), 0u);

    EXPECT_EQ(results[1].status, JobStatus::StepLimit);
    EXPECT_EQ(results[1].steps, 100u);
    EXPECT_GT(results[1].stats->instructions(), 0u);

    EXPECT_EQ(results[2].status, JobStatus::Ok) << results[2].error;
    EXPECT_EQ(results[2].checksum, w.expected);
}

TEST(SimEngine, ChecksumMismatchIsAnError)
{
    const Workload &w = findWorkload("sieve");
    SimJob job;
    job.id = "wrong-checksum";
    job.source = w.riscSource;
    job.expected = w.expected + 1;
    const auto results = sim::runBatch({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Error);
    EXPECT_NE(results[0].error.find("checksum"), std::string::npos);
}

TEST(SimEngine, UnknownBackendNamesTheValidOptions)
{
    SimJob job;
    job.id = "bogus";
    job.backend = "mips";
    const auto results = sim::runBatch({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Error);
    EXPECT_NE(results[0].error.find("mips"), std::string::npos);
    EXPECT_NE(results[0].error.find("risc"), std::string::npos);
    EXPECT_NE(results[0].error.find("vax"), std::string::npos);
}

TEST(SimEngine, SnapshotForkMatchesFreshRun)
{
    const Workload &w = findWorkload("fib_rec");

    SimJob fresh;
    fresh.id = "fresh";
    fresh.source = w.riscSource;
    fresh.expected = w.expected;

    Machine loaded;
    loaded.loadProgram(assembleRisc(w.riscSource));
    SimJob forked;
    forked.id = "forked";
    forked.base =
        std::make_shared<target::RiscTargetSnapshot>(loaded.snapshot());
    forked.expected = w.expected;

    // Fork the same prologue onto a cache-equipped sweep point too.
    SimJob forkedCached = forked;
    forkedCached.id = "forked-icache";
    forkedCached.config.risc.icache = CacheConfig{512, 16, 4};

    const auto results =
        sim::runBatch({fresh, forked, forkedCached}, {2});
    for (const auto &r : results)
        ASSERT_EQ(r.status, JobStatus::Ok) << r.id << ": " << r.error;

    // Architectural results agree everywhere; the cached fork only
    // adds i-cache miss cycles.
    EXPECT_EQ(statsJson(riscRun(results[0])),
              statsJson(riscRun(results[1])));
    EXPECT_EQ(results[2].checksum, w.expected);
    EXPECT_EQ(riscRun(results[2]).instructions,
              riscRun(results[0]).instructions);
    ASSERT_TRUE(target::riscStats(*results[2].stats).caches.l1i);
    EXPECT_GT(
        target::riscStats(*results[2].stats).caches.l1i->accesses(),
        0u);
}

TEST(SimEngine, VaxSnapshotForkMatchesFreshRun)
{
    const Workload &w = findWorkload("fib_rec");

    SimJob fresh;
    fresh.id = "fresh";
    fresh.backend = "vax";
    fresh.source = w.vaxSource;
    fresh.expected = w.expected;

    VaxMachine loaded;
    loaded.loadProgram(assembleVax(w.vaxSource));
    SimJob forked;
    forked.id = "forked";
    forked.backend = "cisc"; // alias resolves to the same backend
    forked.base =
        std::make_shared<target::VaxTargetSnapshot>(loaded.snapshot());
    forked.expected = w.expected;

    const auto results = sim::runBatch({fresh, forked}, {2});
    for (const auto &r : results)
        ASSERT_EQ(r.status, JobStatus::Ok) << r.id << ": " << r.error;

    EXPECT_EQ(results[1].backend, "vax");
    EXPECT_EQ(target::vaxStats(*results[0].stats).vax,
              target::vaxStats(*results[1].stats).vax);
}

TEST(SimEngine, CrossBackendSnapshotIsRejected)
{
    Machine loaded;
    SimJob job;
    job.id = "vax-fork-of-risc-snapshot";
    job.backend = "vax";
    job.base =
        std::make_shared<target::RiscTargetSnapshot>(loaded.snapshot());
    const auto results = sim::runBatch({job});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, JobStatus::Error);
    EXPECT_NE(results[0].error.find("risc"), std::string::npos);
}

TEST(SimEngine, ArtifactRendersAllJobs)
{
    const auto jobs = mixedJobs();
    const auto results = sim::runBatch(jobs);
    const std::string json = sim::resultSetToJson("unit", results);
    EXPECT_NE(json.find("\"batch\": \"unit\""), std::string::npos);
    for (const auto &job : jobs)
        EXPECT_NE(json.find("\"" + job.id + "\""), std::string::npos);
    // Spot-check one structured field name from each stats block.
    EXPECT_NE(json.find("\"windowOverflows\""), std::string::npos);
    EXPECT_NE(json.find("\"memOperandReads\""), std::string::npos);
    // Baseline jobs are reported under the canonical backend name.
    EXPECT_NE(json.find("\"machine\": \"vax\""), std::string::npos);
    EXPECT_EQ(json.find("\"machine\": \"cisc\""), std::string::npos);
}

TEST(JobFile, ParsesSectionsKeysAndDefaults)
{
    const auto jobs = sim::parseJobText(R"(
# top comment
[job]
id       = a
workload = fib_rec
windows  = 6

[job]
workload = sieve     # id defaults to job1
machine  = cisc

[job]
id       = c
workload = hanoi
windowed = false
icache   = 1024,16,4
maxsteps = 12345
expect   = 7
)");
    ASSERT_EQ(jobs.size(), 3u);

    EXPECT_EQ(jobs[0].id, "a");
    EXPECT_EQ(jobs[0].config.risc.windows.numWindows, 6u);
    EXPECT_EQ(jobs[0].expected, findWorkload("fib_rec").expected);

    EXPECT_EQ(jobs[1].id, "job1");
    EXPECT_EQ(jobs[1].backend, "vax"); // legacy "cisc" canonicalized
    EXPECT_EQ(jobs[1].expected, findWorkload("sieve").expected);

    EXPECT_EQ(jobs[2].id, "c");
    EXPECT_FALSE(jobs[2].config.risc.windowedCalls);
    ASSERT_TRUE(jobs[2].config.risc.icache.has_value());
    EXPECT_EQ(jobs[2].config.risc.icache->sizeBytes, 1024u);
    EXPECT_EQ(jobs[2].maxSteps, 12345u);
    EXPECT_EQ(jobs[2].expected, 7u);
}

TEST(JobFile, RejectsMalformedInput)
{
    EXPECT_THROW(sim::parseJobText(""), FatalError);
    EXPECT_THROW(sim::parseJobText("key = value\n"), FatalError);
    EXPECT_THROW(sim::parseJobText("[job]\nworkload = fib_rec\n"
                                   "file = x.s\n"),
                 FatalError);
    EXPECT_THROW(sim::parseJobText("[job]\nnope = 1\n"), FatalError);
    EXPECT_THROW(sim::parseJobText("[job]\nworkload = fib_rec\n"
                                   "windows = banana\n"),
                 FatalError);
    EXPECT_THROW(sim::parseJobText("[job]\nworkload = no_such\n"),
                 FatalError);
}

TEST(JobFile, ProgramResolutionErrorsNameTheOffendingKeyLine)
{
    // The [job] header sits on line 1; the bad keys sit further down.
    // The error must point at the key's own line, not the header's.
    const auto messageFor = [](const std::string &text) {
        try {
            sim::parseJobText(text);
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        ADD_FAILURE() << "expected FatalError for: " << text;
        return std::string();
    };

    const std::string badPath = messageFor("[job]\n"
                                           "id = a\n"
                                           "maxsteps = 10\n"
                                           "file = no/such/prog.s\n");
    EXPECT_NE(badPath.find("line 4"), std::string::npos) << badPath;
    EXPECT_NE(badPath.find("no/such/prog.s"), std::string::npos);

    const std::string badWorkload = messageFor("[job]\n"
                                               "\n"
                                               "workload = no_such\n");
    EXPECT_NE(badWorkload.find("line 3"), std::string::npos)
        << badWorkload;
    EXPECT_NE(badWorkload.find("no_such"), std::string::npos);
}

TEST(Engine, RunsSubmittedTasks)
{
    sim::Engine engine(2, 16);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i)
        engine.submit([&] { ++ran; });
    engine.drain();
    EXPECT_EQ(ran.load(), 20);
    EXPECT_EQ(engine.queueDepth(), 0u);
    EXPECT_EQ(engine.workers(), 2u);
}

TEST(Engine, TrySubmitRefusesWhenFull)
{
    // One worker, capacity 2.  Block the worker on a latch, fill the
    // queue, and the next trySubmit must refuse without blocking —
    // that refusal is the server's backpressure signal.
    sim::Engine engine(1, 2);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    engine.submit([&] {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return release; });
    });
    // The worker may not have dequeued the blocker yet; wait until the
    // queue drains to it before filling the queue to capacity.
    while (engine.queueDepth() > 0)
        std::this_thread::yield();

    EXPECT_TRUE(engine.trySubmit([] {}));
    EXPECT_TRUE(engine.trySubmit([] {}));
    EXPECT_EQ(engine.queueDepth(), 2u);
    EXPECT_FALSE(engine.trySubmit([] {}))
        << "queue at capacity must refuse, not block";

    {
        std::lock_guard lock(m);
        release = true;
    }
    cv.notify_all();
    engine.drain();
    EXPECT_EQ(engine.queueDepth(), 0u);
    EXPECT_TRUE(engine.trySubmit([] {})) << "capacity freed after drain";
    engine.drain();
}

TEST(Engine, SubmitBlocksUntilSpaceFrees)
{
    sim::Engine engine(1, 1);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    engine.submit([&] {
        std::unique_lock lock(m);
        cv.wait(lock, [&] { return release; });
    });
    while (engine.queueDepth() > 0)
        std::this_thread::yield();
    engine.submit([] {}); // fills the queue

    std::atomic<bool> secondQueued{false};
    std::thread producer([&] {
        engine.submit([] {}); // must block until the latch opens
        secondQueued = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(secondQueued.load());

    {
        std::lock_guard lock(m);
        release = true;
    }
    cv.notify_all();
    producer.join();
    EXPECT_TRUE(secondQueued.load());
    engine.drain();
}

TEST(Engine, StopRunsEverythingAlreadyQueued)
{
    std::atomic<int> ran{0};
    {
        sim::Engine engine(1, 64);
        for (int i = 0; i < 10; ++i)
            engine.submit([&] { ++ran; });
        engine.stop();
        EXPECT_EQ(ran.load(), 10)
            << "graceful stop must drain the queue, not drop it";
        EXPECT_FALSE(engine.trySubmit([&] { ++ran; }))
            << "stopped engine refuses new tasks";
        EXPECT_THROW(engine.submit([] {}), FatalError);
        engine.stop(); // idempotent
    }
    EXPECT_EQ(ran.load(), 10);
}

TEST(Engine, TaskExceptionsDoNotKillWorkers)
{
    sim::Engine engine(1, 16);
    std::atomic<int> ran{0};
    engine.submit([] { throw std::runtime_error("task failure"); });
    engine.submit([&] { ++ran; });
    engine.drain();
    EXPECT_EQ(ran.load(), 1)
        << "the worker must survive a throwing task";
}

TEST(SimEngine, CancelDrainsQueuedJobsGracefully)
{
    // With cancel pre-set, every job reports Canceled (none started)
    // and the batch still yields one result per job, in order — the
    // contract riscbatch's SIGINT/SIGTERM handler relies on.
    const auto jobs = mixedJobs();
    std::atomic<bool> cancel{true};
    sim::BatchOptions options;
    options.workers = 2;
    options.cancel = &cancel;
    const auto results = sim::runBatch(jobs, options);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].status, JobStatus::Canceled);
        ASSERT_TRUE(results[i].stats) << "schema keeps stats blocks";
    }
    const std::string json = sim::resultSetToJson("canceled", results);
    EXPECT_NE(json.find("\"canceled\""), std::string::npos);
}

TEST(JobFile, UnknownNamesReportTheValidOptions)
{
    // Unknown machine names and unknown keys both fail with one-line
    // messages that name the valid choices.
    try {
        sim::parseJobText("[job]\nworkload = fib_rec\n"
                          "machine = mips\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("mips"), std::string::npos) << msg;
        EXPECT_NE(msg.find("risc"), std::string::npos) << msg;
        EXPECT_NE(msg.find("vax/cisc"), std::string::npos) << msg;
    }
    try {
        sim::parseJobText("[job]\nworkloud = fib_rec\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("workloud"), std::string::npos) << msg;
        EXPECT_NE(msg.find("workload"), std::string::npos) << msg;
        EXPECT_NE(msg.find("maxsteps"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace risc1
